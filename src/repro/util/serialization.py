"""JSON serialization helpers.

ScalAna is a post-mortem tool: the profiling phase writes per-rank data to
disk (this is exactly the "storage cost" the paper measures) and the
detection phase reads it back.  We serialize to JSON because the volumes are
tiny by construction — that is the point of graph-guided compression.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / numpy scalars / sets to JSON types."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(x) for x in obj)
    raise TypeError(f"cannot serialize {type(obj).__name__} to JSON")


def dump_json(obj: Any, path: str | Path) -> int:
    """Write ``obj`` as JSON; returns the number of bytes written.

    ``allow_nan=False``: a non-finite float would serialize as bare ``NaN``
    — invalid JSON that poisons the artifact cache (every load fails, every
    miss rewrites the same bad file).  Failing the write is the cheap place
    to catch it; exports that may legitimately carry NaN sentinels sanitize
    first (see ``repro.tools.export.sanitize_json_floats``).
    """
    text = json.dumps(
        to_jsonable(obj), indent=None, separators=(",", ":"), allow_nan=False
    )
    data = text.encode()
    Path(path).write_bytes(data)
    return len(data)


def load_json(path: str | Path) -> Any:
    return json.loads(Path(path).read_text())
