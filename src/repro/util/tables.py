"""ASCII table rendering for the benchmark harness.

Every bench target prints the same rows/series the paper reports; the
:class:`Table` here renders them in a stable, diff-friendly format so
EXPERIMENTS.md can embed harness output verbatim.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["Table", "format_bytes", "format_seconds"]


def format_bytes(n: float) -> str:
    """Human-readable byte count (KB/MB/GB, base 1024) like the paper's tables."""
    n = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{n:.0f} {unit}"
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(s: float) -> str:
    """Human-readable duration."""
    s = float(s)
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.2f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    return f"{s / 60.0:.2f} min"


class Table:
    """A simple left-aligned ASCII table with a title and column headers."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(fmt(self.columns))
        lines.append(sep)
        for row in self.rows:
            lines.append(fmt(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
