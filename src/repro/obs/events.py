"""Streaming progress events: a tiny subscriber bus.

Long-running drivers (``run_scales``, ``sweep``, ``run_lint_scales``, the
sharded coordinator's round loop) emit structured progress events so a
caller — the CLI ``--progress`` renderer today, a job server tomorrow —
can watch a run live instead of polling for the final artifact.

Events are plain ``(kind, data)`` records.  The catalog in use:

========================= ==================================================
kind                      data keys
========================= ==================================================
``run_started``           digest, scales
``run_finished``          digest, scales, seconds
``scale_started``         nprocs
``scale_finished``        nprocs, cached, seconds
``cache_hit``             digest, nprocs, hits, misses
``cache_miss``            digest, nprocs, hits, misses
``round_completed``       round, messages, in_flight
``sweep_started``         apps, scales, cells
``cell_finished``         app, nprocs, cached, done, total
``sweep_finished``        cells, cache_hits, seconds
``lint_scales_started``   lo, hi, status, witnesses
``lint_witness_finished`` nprocs, findings
``lint_scales_finished``  lo, hi, status, findings
========================= ==================================================

The disabled path is one attribute check: ``emit`` returns immediately
when there are no subscribers, so engines and drivers can emit
unconditionally at round/scale granularity without a config knob.
"""

from __future__ import annotations

import contextlib
import queue as _queue
import threading
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventBus"]


@dataclass(frozen=True, slots=True)
class Event:
    kind: str
    data: dict = field(default_factory=dict)


class EventBus:
    """Callback fan-out with an empty-bus fast path.

    Subscribers are plain callables taking one :class:`Event`.  Exceptions
    in a subscriber are swallowed — a broken progress renderer must never
    corrupt an analysis run.
    """

    def __init__(self) -> None:
        self._subs: tuple[Callable[[Event], None], ...] = ()
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        return bool(self._subs)

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe function."""
        with self._lock:
            self._subs = (*self._subs, callback)

        def unsubscribe() -> None:
            with self._lock:
                self._subs = tuple(s for s in self._subs if s is not callback)

        return unsubscribe

    def subscribe_queue(self, maxsize: int = 0) -> tuple["_queue.Queue[Event]", Callable[[], None]]:
        """Subscribe a queue; returns ``(queue, unsubscribe)``.

        Full queues drop events rather than block the producer — progress
        is advisory, analysis is not allowed to stall on a slow consumer.
        """
        q: _queue.Queue[Event] = _queue.Queue(maxsize=maxsize)

        def push(ev: Event) -> None:
            with contextlib.suppress(_queue.Full):
                q.put_nowait(ev)

        return q, self.subscribe(push)

    def emit(self, kind: str, **data: object) -> None:
        subs = self._subs
        if not subs:
            return
        ev = Event(kind, data)
        for cb in subs:
            with contextlib.suppress(Exception):
                cb(ev)
