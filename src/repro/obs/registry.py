"""The metrics registry: counters, gauges and fixed-bucket histograms.

The design constraint is the same one the source paper applies to its own
subject: observation must cost near-nothing when off and a *quantified*
near-nothing when on.  Three consequences shape the API:

* **Aggregate granularity.**  Instruments are meant to be driven from
  round/drain/run boundaries, never from per-event hot-loop code.  The
  engine, for example, folds its existing aggregate counters into a
  registry once per run (:meth:`repro.simulator.Engine.metrics_snapshot`).
* **Snapshot/merge semantics.**  A :class:`MetricsRegistry` is a live,
  mutable, thread-safe instrument store; a :class:`RunMetrics` is its
  frozen, picklable snapshot.  Sharded multiprocessing workers ship
  snapshots back in ``ShardFinal`` and the coordinator merges them exactly
  like ``TraceBuffer.merge``: counters and histogram buckets sum exactly,
  gauges keep the maximum.
* **Digest neutrality.**  Nothing here ever feeds a config digest or a
  run fingerprint: metrics describe how a run was *executed and observed*,
  not what it computed.

Series are labeled: ``registry.counter("cache.hits", app="cg")`` and
``registry.counter("cache.hits", app="ep")`` are distinct series of the
same metric, rendered as ``cache.hits{app=cg}`` in snapshots and JSON.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunMetrics",
    "DEFAULT_BUCKETS",
    "METRICS_FORMAT",
    "series_key",
]

METRICS_FORMAT = "scalana-metrics-v1"

#: Default histogram bucket upper bounds: log-spaced from 1 µs to ~100 s,
#: a range that covers both simulated timestamps and wall-clock latencies.
#: The last bucket is implicit +inf (everything above the largest bound).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0,
)


def series_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical series identifier: ``name`` or ``name{k=v,...}`` (sorted).

    The key doubles as the JSON dictionary key, so snapshots round-trip
    without a separate label encoding.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing number (int or float).

    Increments are lock-protected so concurrent profiling jobs
    (``run_scales(jobs=N)`` thread pools) sum exactly — the merge tests
    assert equality, not approximation.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: int | float = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value; merge keeps the maximum across shards."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram (cumulative-free, per-bucket counts).

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one implicit overflow bucket catches everything above the
    last bound, so ``counts`` has ``len(bounds) + 1`` entries.  Fixed
    bounds are what make shard merges exact: same bounds, elementwise sum.
    """

    __slots__ = ("bounds", "counts", "total", "count", "_lock")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = bisect_right(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.total += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (0 <= q <= 1).

        Returns the upper bound of the bucket containing the q-th
        observation (the overflow bucket reports the largest bound) —
        the usual fixed-bucket percentile, good enough for latency
        dashboards, never used for anything digest-relevant.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]


@dataclass(frozen=True)
class RunMetrics:
    """A frozen, picklable snapshot of one registry.

    This is what attaches to ``ProfileArtifact`` / ``DetectionReport``,
    crosses the multiprocessing pipe in ``ShardFinal``, and lands in the
    ``metrics`` section of JSON reports.  Keys are :func:`series_key`
    strings; histogram values are plain dicts so the whole object is JSON
    without further encoding.
    """

    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    # -- accessors -------------------------------------------------------

    def counter(self, key: str, default: int | float = 0) -> int | float:
        return self.counters.get(key, default)

    def gauge(self, key: str, default: float = 0.0) -> float:
        return self.gauges.get(key, default)

    def _quantile_bucket(self, key: str, q: float) -> int | None:
        """Index of the bucket holding the q-th observation (an index of
        ``len(bounds)`` means the overflow bucket), or None when empty."""
        doc = self.histograms.get(key)
        if not doc or not doc["count"]:
            return None
        target = q * doc["count"]
        seen = 0
        for i, c in enumerate(doc["counts"]):
            seen += c
            if seen >= target and c:
                return i
        return len(doc["counts"]) - 1

    def histogram_quantile(self, key: str, q: float) -> float:
        """Upper bound of the bucket holding the q-th observation (the
        overflow bucket reports the largest bound; see ``render`` for the
        honest ``>bound`` form)."""
        i = self._quantile_bucket(key, q)
        if i is None:
            return 0.0
        bounds = self.histograms[key]["bounds"]
        return bounds[min(i, len(bounds) - 1)]

    # -- merge (the TraceBuffer.merge of metrics) ------------------------

    @classmethod
    def merge(cls, parts: Iterable["RunMetrics | None"]) -> "RunMetrics":
        """Sum counters and histogram buckets exactly; gauges keep max.

        ``None`` parts are skipped so callers can merge optional shard
        metrics without filtering first.  Histogram merges require equal
        bounds — the registry is the only writer, so a mismatch is a
        programming error, reported loudly.
        """
        counters: dict[str, int | float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for part in parts:
            if part is None:
                continue
            for key, value in part.counters.items():
                counters[key] = counters.get(key, 0) + value
            for key, value in part.gauges.items():
                gauges[key] = max(gauges.get(key, value), value)
            for key, doc in part.histograms.items():
                have = histograms.get(key)
                if have is None:
                    histograms[key] = {
                        "bounds": list(doc["bounds"]),
                        "counts": list(doc["counts"]),
                        "sum": doc["sum"],
                        "count": doc["count"],
                    }
                    continue
                if list(have["bounds"]) != list(doc["bounds"]):
                    raise ValueError(
                        f"histogram {key!r}: cannot merge differing bounds"
                    )
                have["counts"] = [
                    a + b for a, b in zip(have["counts"], doc["counts"])
                ]
                have["sum"] += doc["sum"]
                have["count"] += doc["count"]
        return cls(counters=counters, gauges=gauges, histograms=histograms)

    # -- JSON ------------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "format": METRICS_FORMAT,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: {
                    "bounds": list(v["bounds"]),
                    "counts": list(v["counts"]),
                    "sum": v["sum"],
                    "count": v["count"],
                }
                for k, v in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_json_dict(cls, doc: Mapping) -> "RunMetrics":
        """Parse + validate a metrics document (the CI schema check)."""
        if doc.get("format") != METRICS_FORMAT:
            raise ValueError(
                f"not a {METRICS_FORMAT} document: {doc.get('format')!r}"
            )
        counters = dict(doc.get("counters", {}))
        for key, value in counters.items():
            if not isinstance(value, (int, float)):
                raise ValueError(f"counter {key!r} is not numeric: {value!r}")
        gauges = {k: float(v) for k, v in doc.get("gauges", {}).items()}
        histograms: dict[str, dict] = {}
        for key, h in doc.get("histograms", {}).items():
            bounds = [float(b) for b in h["bounds"]]
            counts = [int(c) for c in h["counts"]]
            if len(counts) != len(bounds) + 1:
                raise ValueError(
                    f"histogram {key!r}: {len(counts)} counts for "
                    f"{len(bounds)} bounds (need bounds + 1)"
                )
            if bounds != sorted(bounds):
                raise ValueError(f"histogram {key!r}: bounds not sorted")
            if int(h["count"]) != sum(counts):
                raise ValueError(
                    f"histogram {key!r}: count {h['count']} != "
                    f"sum of buckets {sum(counts)}"
                )
            histograms[key] = {
                "bounds": bounds, "counts": counts,
                "sum": float(h["sum"]), "count": int(h["count"]),
            }
        return cls(counters=counters, gauges=gauges, histograms=histograms)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """A compact human-readable summary (the CLI ``--metrics`` block)."""
        lines = ["metrics:"]
        for key, value in sorted(self.counters.items()):
            if isinstance(value, float):
                lines.append(f"  {key:<40s} {value:.6g}")
            else:
                lines.append(f"  {key:<40s} {value}")
        for key, value in sorted(self.gauges.items()):
            lines.append(f"  {key:<40s} {value:.6g} (gauge)")
        for key, doc in sorted(self.histograms.items()):
            n = doc["count"]
            mean = doc["sum"] / n if n else 0.0
            lines.append(
                f"  {key:<40s} n={n} mean={mean:.6g} "
                f"p50{self._quantile_str(key, 0.50)} "
                f"p95{self._quantile_str(key, 0.95)}"
            )
        return "\n".join(lines)

    def _quantile_str(self, key: str, q: float) -> str:
        """``<=bound`` normally, ``>bound`` for the overflow bucket."""
        i = self._quantile_bucket(key, q)
        if i is None:
            return "<=0"
        bounds = self.histograms[key]["bounds"]
        if i >= len(bounds):
            return f">{bounds[-1]:.6g}"
        return f"<={bounds[i]:.6g}"


class MetricsRegistry:
    """A live store of labeled instruments with snapshot/merge semantics.

    Instrument creation is lock-protected; the instruments themselves
    guard their own updates, so a registry can be driven from the thread
    pools of ``run_scales``/``sweep`` without external locking.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels: object) -> Counter:
        key = series_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(key, Counter())
        return c

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = series_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(key, Gauge())
        return g

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = series_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(key, Histogram(bounds))
        return h

    def snapshot(self) -> RunMetrics:
        """A frozen copy of every series (safe to pickle, merge, ship)."""
        with self._lock:
            counters = {k: c.value for k, c in self._counters.items()}
            gauges = {k: g.value for k, g in self._gauges.items()}
            histograms = {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for k, h in self._histograms.items()
            }
        return RunMetrics(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def merge_snapshot(self, snap: RunMetrics) -> None:
        """Fold a snapshot into this registry (counter += counter, ...)."""
        for key, value in snap.counters.items():
            c = self._counters.get(key)
            if c is None:
                with self._lock:
                    c = self._counters.setdefault(key, Counter())
            c.inc(value)
        for key, value in snap.gauges.items():
            g = self.gauge(key)
            g.set(max(g.value, value))
        for key, doc in snap.histograms.items():
            h = self.histogram(key, bounds=doc["bounds"])
            if list(h.bounds) != list(doc["bounds"]):
                raise ValueError(
                    f"histogram {key!r}: cannot merge differing bounds"
                )
            with h._lock:
                for i, c in enumerate(doc["counts"]):
                    h.counts[i] += c
                h.total += doc["sum"]
                h.count += doc["count"]

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
