"""Tracing spans with Chrome-trace export.

A span is a named, timed region with optional key/value args:

    with obs.span("profile.simulate", nprocs=64):
        ...

The recorder is **off by default** and the disabled path is structurally
free: :func:`SpanRecorder.span` returns one shared, pre-built null
context manager — no allocation, no clock read, no string work.  Tests
assert the singleton identity (``recorder.span("x") is NULL_SPAN``), which
is the strongest "no per-call overhead" statement Python lets us make.

Enabled spans record Chrome-trace *complete* events (``"ph": "X"`` with
microsecond ``ts``/``dur``), loadable in ``chrome://tracing`` / Perfetto.
Timestamps are relative to the recorder's epoch so traces start at 0.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SpanRecorder", "NULL_SPAN", "null_span"]


#: The shared disabled-path context manager.  ``@contextmanager`` builds a
#: fresh generator per ``with``, so we use a tiny class instead: one object,
#: reusable, reentrant, nothing per use.
class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


def null_span() -> _NullSpan:
    return NULL_SPAN


class _LiveSpan:
    """One recorded region; appends a complete event on exit."""

    __slots__ = ("_rec", "_name", "_args", "_t0")

    def __init__(self, rec: "SpanRecorder", name: str, args: dict) -> None:
        self._rec = rec
        self._name = name
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter()
        self._rec._record(self._name, self._args, self._t0, t1)
        return False


class SpanRecorder:
    """Collects spans while enabled; exports Chrome trace-event JSON.

    Enablement is a depth counter so nested ``enabled_scope()`` uses
    (e.g. a Pipeline run inside an already-tracing sweep) compose: the
    recorder stays on until the outermost scope exits.
    """

    def __init__(self) -> None:
        self._depth = 0
        self._epoch = time.perf_counter()
        self._events: list[dict] = []
        self._lock = threading.Lock()

    # -- enablement ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._depth > 0

    @contextmanager
    def enabled_scope(self) -> Iterator["SpanRecorder"]:
        with self._lock:
            self._depth += 1
            if self._depth == 1 and not self._events:
                self._epoch = time.perf_counter()
        try:
            yield self
        finally:
            with self._lock:
                self._depth -= 1

    # -- recording -------------------------------------------------------

    def span(self, name: str, **args: object):
        """A context manager timing the region; NULL_SPAN when disabled."""
        if self._depth == 0:
            return NULL_SPAN
        return _LiveSpan(self, name, args)

    def _record(self, name: str, args: dict, t0: float, t1: float) -> None:
        ev = {
            "name": name,
            "ph": "X",
            "ts": (t0 - self._epoch) * 1e6,
            "dur": (t1 - t0) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            ev["args"] = {k: _jsonable(v) for k, v in args.items()}
        with self._lock:
            self._events.append(ev)

    def instant(self, name: str, **args: object) -> None:
        """Record a zero-duration instant event (``"ph": "i"``)."""
        if self._depth == 0:
            return
        ev = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": (time.perf_counter() - self._epoch) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            ev["args"] = {k: _jsonable(v) for k, v in args.items()}
        with self._lock:
            self._events.append(ev)

    # -- export ----------------------------------------------------------

    @property
    def event_count(self) -> int:
        return len(self._events)

    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event container (``{"traceEvents": [...]}``)."""
        with self._lock:
            events = sorted(self._events, key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._epoch = time.perf_counter()


def _jsonable(v: object) -> object:
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    return str(v)
