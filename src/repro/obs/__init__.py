"""`repro.obs` — the observability layer: metrics, spans, progress events.

Three stdlib-only primitives (no imports from the rest of ``repro``, so
any layer may use them without cycles):

* :class:`MetricsRegistry` / :class:`RunMetrics` — labeled counters,
  gauges, fixed-bucket histograms with exact snapshot/merge semantics
  (`registry.py`).
* :class:`SpanRecorder` — Chrome-trace spans, structurally free when
  disabled (`spans.py`).
* :class:`EventBus` — streaming progress events with an empty-bus fast
  path (`events.py`).

Process-global instances live here (``obs.registry``, ``obs.tracer``,
``obs.bus``) with module-level conveniences::

    from repro import obs

    obs.registry.counter("sim.engine_runs").inc()
    with obs.span("pipeline.profile", nprocs=64):
        ...
    obs.emit("scale_finished", app="cg", nprocs=64, cached=False)

Everything here is digest-neutral by construction: no metric, span, or
event ever feeds ``AnalysisConfig.digest`` or ``run_fingerprint``.
"""

from __future__ import annotations

from typing import Callable

from .events import Event, EventBus
from .registry import (
    DEFAULT_BUCKETS,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunMetrics,
    series_key,
)
from .spans import NULL_SPAN, SpanRecorder, null_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunMetrics",
    "DEFAULT_BUCKETS",
    "METRICS_FORMAT",
    "series_key",
    "SpanRecorder",
    "NULL_SPAN",
    "null_span",
    "Event",
    "EventBus",
    "registry",
    "tracer",
    "bus",
    "span",
    "instant",
    "emit",
    "subscribe",
]

#: Process-global instruments.  Workers forked by the multiprocessing
#: executor inherit copies; their registries are shipped back explicitly
#: as :class:`RunMetrics` snapshots in ``ShardFinal`` and merged by the
#: coordinator, so the globals never need cross-process coherence.
registry = MetricsRegistry()
tracer = SpanRecorder()
bus = EventBus()


def span(name: str, **args: object):
    """``with obs.span("engine.run", nprocs=P):`` — NULL_SPAN when off."""
    return tracer.span(name, **args)


def instant(name: str, **args: object) -> None:
    tracer.instant(name, **args)


def emit(kind: str, **data: object) -> None:
    bus.emit(kind, **data)


def subscribe(callback: Callable[[Event], None]) -> Callable[[], None]:
    return bus.subscribe(callback)
