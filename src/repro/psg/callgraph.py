"""Program call graph (PCG) construction and analysis.

The inter-procedural PSG build starts "by analyzing the program's call
graph, which contains all calling relationships between different
functions" (paper §III-A).  Direct calls are resolved statically; indirect
calls (through ``&func`` references stored in variables) contribute
*candidate* edges — any function whose reference is taken anywhere in the
program — and are finally resolved at runtime (§III-B3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.minilang import ast_nodes as ast

__all__ = ["CallSite", "CallGraph", "build_call_graph"]


@dataclass(frozen=True)
class CallSite:
    caller: str
    stmt_id: int
    callee: str  # "" when unknown (indirect)
    indirect: bool


@dataclass
class CallGraph:
    """Call relationships of one program."""

    program: ast.Program
    #: caller -> set of statically-known callees.
    edges: dict[str, set[str]] = field(default_factory=dict)
    call_sites: list[CallSite] = field(default_factory=list)
    #: Functions whose address is taken somewhere (&f) — indirect candidates.
    address_taken: set[str] = field(default_factory=set)

    def callees(self, name: str) -> set[str]:
        return self.edges.get(name, set())

    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.program.functions)
        for caller, callees in self.edges.items():
            for callee in callees:
                g.add_edge(caller, callee)
        return g

    def recursive_functions(self) -> set[str]:
        """Functions involved in any call cycle (incl. self-recursion)."""
        g = self.to_networkx()
        out: set[str] = set()
        for scc in nx.strongly_connected_components(g):
            if len(scc) > 1:
                out |= scc
            else:
                (node,) = scc
                if g.has_edge(node, node):
                    out.add(node)
        return out

    def reachable_from(self, entry: str = "main") -> set[str]:
        g = self.to_networkx()
        if entry not in g:
            return set()
        return {entry} | nx.descendants(g, entry)

    def unreachable_functions(self, entry: str = "main") -> set[str]:
        return set(self.program.functions) - self.reachable_from(entry)


def _expr_address_taken(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.FuncRef):
        out.add(expr.name)
    elif isinstance(expr, ast.UnaryExpr):
        _expr_address_taken(expr.operand, out)
    elif isinstance(expr, ast.BinaryExpr):
        _expr_address_taken(expr.left, out)
        _expr_address_taken(expr.right, out)
    elif isinstance(expr, ast.CallExpr):
        for a in expr.args:
            _expr_address_taken(a, out)


def build_call_graph(program: ast.Program) -> CallGraph:
    """Scan every function body for call sites and address-taken functions."""
    cg = CallGraph(program=program)
    for fname, func in program.functions.items():
        cg.edges.setdefault(fname, set())
        for stmt in ast.walk_statements(func.body):
            # collect &f references from any expression position
            for expr in _stmt_exprs(stmt):
                _expr_address_taken(expr, cg.address_taken)
            if isinstance(stmt, ast.CallStmt):
                callee = stmt.callee
                if isinstance(callee, ast.VarRef) and callee.name in program.functions:
                    cg.edges[fname].add(callee.name)
                    cg.call_sites.append(
                        CallSite(fname, stmt.stmt_id, callee.name, indirect=False)
                    )
                else:
                    # unknown target: function pointer held in a variable
                    cg.call_sites.append(
                        CallSite(fname, stmt.stmt_id, "", indirect=True)
                    )
    return cg


def _stmt_exprs(stmt: ast.Stmt) -> list[ast.Expr]:
    """All expressions directly attached to ``stmt`` (not nested stmts)."""
    out: list[ast.Expr] = []

    def add(e: ast.Expr | None) -> None:
        if e is not None:
            out.append(e)

    if isinstance(stmt, ast.VarDecl):
        add(stmt.init)
    elif isinstance(stmt, ast.Assign):
        add(stmt.value)
    elif isinstance(stmt, ast.ForStmt):
        add(stmt.cond)
    elif isinstance(stmt, ast.WhileStmt):
        add(stmt.cond)
    elif isinstance(stmt, ast.IfStmt):
        add(stmt.cond)
    elif isinstance(stmt, ast.ReturnStmt):
        add(stmt.value)
    elif isinstance(stmt, ast.ComputeStmt):
        add(stmt.flops)
        add(stmt.mem_bytes)
        add(stmt.locality)
    elif isinstance(stmt, ast.MpiStmt):
        for e in (
            stmt.dest,
            stmt.src,
            stmt.tag,
            stmt.bytes_expr,
            stmt.root,
            stmt.recv_src,
            stmt.recv_tag,
        ):
            add(e)
    elif isinstance(stmt, ast.CallStmt):
        add(stmt.callee)
        out.extend(stmt.args)
    return out
