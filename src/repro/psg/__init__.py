"""Program Structure Graph construction (paper §III-A).

The three phases — intra-procedural local PSGs, inter-procedural inlining
over the program call graph, and graph contraction — are exposed
individually, plus :func:`build_psg` which runs the whole static pipeline
the way ``ScalAna-static`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minilang import ast_nodes as ast
from repro.psg.callgraph import CallGraph, CallSite, build_call_graph
from repro.psg.contraction import (
    DEFAULT_MAX_LOOP_DEPTH,
    ContractionResult,
    contract_psg,
)
from repro.psg.graph import PSG, InlinePath, PSGVertex, VertexType
from repro.psg.interproc import build_complete_psg, refine_indirect_calls
from repro.psg.intraproc import StructureMismatchError, build_local_psg

__all__ = [
    "PSG",
    "PSGVertex",
    "VertexType",
    "InlinePath",
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "build_local_psg",
    "build_complete_psg",
    "refine_indirect_calls",
    "contract_psg",
    "ContractionResult",
    "DEFAULT_MAX_LOOP_DEPTH",
    "StructureMismatchError",
    "StaticAnalysisResult",
    "build_psg",
]


@dataclass(frozen=True)
class StaticAnalysisResult:
    """Everything ``ScalAna-static`` produces at compile time."""

    program: ast.Program
    call_graph: CallGraph
    complete_psg: PSG
    contracted: ContractionResult

    @property
    def psg(self) -> PSG:
        """The contracted PSG used at runtime and by detection."""
        return self.contracted.psg


def build_psg(
    program: ast.Program,
    *,
    max_loop_depth: int = DEFAULT_MAX_LOOP_DEPTH,
    entry: str = "main",
    verify_cfg: bool = True,
) -> StaticAnalysisResult:
    """Run the full static pipeline: call graph -> complete PSG -> contraction."""
    call_graph = build_call_graph(program)
    complete = build_complete_psg(program, entry=entry, verify_cfg=verify_cfg)
    contracted = contract_psg(complete, max_loop_depth)
    return StaticAnalysisResult(
        program=program,
        call_graph=call_graph,
        complete_psg=complete,
        contracted=contracted,
    )
