"""Inter-procedural PSG construction (paper §III-A, second phase).

Combines local PSGs into one complete graph by a top-down traversal of the
program call graph from ``main``, replacing every user-defined call with a
clone of the callee's local PSG (splicing its body in place of the call
vertex, as Fig. 4(b) shows).  Three special cases follow the paper exactly:

* **MPI calls** are kept as-is,
* **recursive calls** are not re-inlined: the call vertex stays and gets a
  ``recursion_target`` cycle edge back to the already-inlined instance,
* **indirect calls** (function pointers) keep an ``indirect`` Call vertex;
  :func:`refine_indirect_calls` splices observed targets in after runtime
  collection (§III-B3).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.minilang import ast_nodes as ast
from repro.psg.graph import PSG, InlinePath, PSGVertex, VertexType
from repro.psg.intraproc import build_local_psg

__all__ = ["build_complete_psg", "refine_indirect_calls", "InlineBudgetError"]

#: Safety valve: a program whose static inlining expands beyond this many
#: vertices is almost certainly mutually recursive in a way the recursion
#: guard should have caught; fail loudly rather than consume all memory.
_MAX_VERTICES = 2_000_000


class InlineBudgetError(RuntimeError):
    """Static inlining exceeded the vertex budget."""


def build_complete_psg(
    program: ast.Program,
    *,
    entry: str = "main",
    verify_cfg: bool = True,
) -> PSG:
    """Build the complete (pre-contraction) PSG of ``program``."""
    locals_: dict[str, PSG] = {
        name: build_local_psg(func, verify_cfg=verify_cfg)
        for name, func in program.functions.items()
    }
    if entry not in locals_:
        raise KeyError(f"program has no entry function {entry!r}")

    psg = PSG(name=f"{program.filename}:{entry}")
    entry_func = program.functions[entry]
    root = psg.new_vertex(
        VertexType.ROOT,
        name=entry,
        location=entry_func.location,
        function=entry,
    )
    _splice(
        psg,
        program,
        locals_,
        source=locals_[entry],
        source_parent=locals_[entry].root_id,
        target_parent=root.vid,
        inline_path=(),
        stack={entry: root.vid},
    )
    return psg


def _splice(
    psg: PSG,
    program: ast.Program,
    locals_: Mapping[str, PSG],
    *,
    source: PSG,
    source_parent: int,
    target_parent: int,
    inline_path: InlinePath,
    stack: dict[str, int],
) -> None:
    """Clone the children of ``source_parent`` (in ``source``) under
    ``target_parent`` (in ``psg``), inlining user calls on the way."""
    for child_id in source.vertices[source_parent].children:
        child = source.vertices[child_id]
        if len(psg.vertices) > _MAX_VERTICES:
            raise InlineBudgetError(
                f"PSG exceeded {_MAX_VERTICES} vertices while inlining"
            )
        if child.vtype is VertexType.CALL:
            callee_name = child.name
            if callee_name in program.functions:
                if callee_name in stack:
                    # Recursive call: keep the vertex, close the cycle.
                    v = _clone_vertex(psg, child, target_parent, inline_path)
                    v.recursion_target = stack[callee_name]
                    continue
                # Direct call: splice the callee body in place.
                callee_local = locals_[callee_name]
                call_path = inline_path + (child.stmt_ids[0],)
                stack[callee_name] = target_parent
                _splice(
                    psg,
                    program,
                    locals_,
                    source=callee_local,
                    source_parent=callee_local.root_id,
                    target_parent=target_parent,
                    inline_path=call_path,
                    stack=stack,
                )
                del stack[callee_name]
                continue
            # Indirect call (target unknown statically): keep, mark.
            v = _clone_vertex(psg, child, target_parent, inline_path)
            v.indirect = True
            continue

        v = _clone_vertex(psg, child, target_parent, inline_path)
        if child.children:
            _splice(
                psg,
                program,
                locals_,
                source=source,
                source_parent=child_id,
                target_parent=v.vid,
                inline_path=inline_path,
                stack=stack,
            )


def _clone_vertex(
    psg: PSG, src: PSGVertex, parent: int, inline_path: InlinePath
) -> PSGVertex:
    return psg.new_vertex(
        src.vtype,
        name=src.name,
        location=src.location,
        stmt_ids=src.stmt_ids,
        inline_path=inline_path,
        function=src.function,
        parent=parent,
        arm=src.arm,
        mpi_op=src.mpi_op,
        indirect=src.indirect,
        loop_depth=src.loop_depth,
    )


def refine_indirect_calls(
    psg: PSG,
    program: ast.Program,
    observed_targets: Mapping[tuple[InlinePath, int], set[str]],
    *,
    verify_cfg: bool = False,
) -> int:
    """Runtime refinement of indirect calls (paper §III-B3).

    ``observed_targets`` maps the (inline path, call-site stmt id) of an
    indirect Call vertex to the set of function names it was observed to
    invoke.  Each target's local PSG is spliced *under* the Call vertex
    (keeping the vertex so multiple dynamic targets stay distinguishable).
    Returns the number of call sites refined.
    """
    refined = 0
    indirect = [
        v
        for v in list(psg.vertices.values())
        if v.vtype is VertexType.CALL and v.indirect
    ]
    locals_cache: dict[str, PSG] = {}
    for v in indirect:
        key = (v.inline_path, v.stmt_ids[0])
        targets = observed_targets.get(key)
        if not targets:
            continue
        for target in sorted(targets):
            if target not in program.functions:
                raise KeyError(f"observed indirect target {target!r} is not defined")
            if target not in locals_cache:
                locals_cache[target] = build_local_psg(
                    program.functions[target], verify_cfg=verify_cfg
                )
            callee_local = locals_cache[target]
            call_path = v.inline_path + (v.stmt_ids[0],)
            _splice(
                psg,
                program,
                locals_cache_program_view(program),
                source=callee_local,
                source_parent=callee_local.root_id,
                target_parent=v.vid,
                inline_path=call_path,
                stack={target: v.vid},
            )
        v.indirect = False  # now resolved
        refined += 1
    return refined


def locals_cache_program_view(program: ast.Program) -> Mapping[str, PSG]:
    """Lazy local-PSG mapping used during indirect-call refinement."""

    class _Lazy(dict):
        def __missing__(self, key: str) -> PSG:
            local = build_local_psg(program.functions[key], verify_cfg=False)
            self[key] = local
            return local

    return _Lazy()
