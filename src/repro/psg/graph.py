"""The Program Structure Graph (PSG) data model.

A PSG (paper §III-A) is a per-process sketch of the program: vertices are
the main computation and communication components plus control structures
(``Root``, ``Loop``, ``Branch``, ``Comp``, ``MPI``, and unresolved
``Call``s); the vertex order encodes execution order based on data and
control flow.

Representation
--------------
We store the PSG as an ordered tree plus auxiliary edges:

* every vertex has a ``parent`` and an ordered ``children`` list — for
  ``Loop``/``Branch``/``Root`` vertices the children are the body in
  execution order (branch children carry an ``arm`` tag),
* *data-dependence* (execution-order) predecessor of a vertex is its
  previous sibling, or its parent when it is the first child — exactly the
  backward edges Algorithm 1 walks,
* *control-dependence* edges go from a ``Loop``/``Branch`` vertex into its
  body; walking one backward from the structure vertex lands on the body's
  last vertex,
* recursion keeps an explicit cycle edge (``recursion_target``), and
  indirect calls keep a ``Call`` vertex refined at runtime (§III-B3).

Vertex identity is stable across ranks and scales: the PSG is built once
from source, then replicated per process into the PPG.  ``stmt_index`` maps
``(inline_path, stmt_id)`` — the static call path and the source statement —
to the vertex id, which is how runtime profiling data lands on the right
vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from collections.abc import Iterator

import networkx as nx

from repro.minilang.ast_nodes import MpiOp
from repro.minilang.errors import SourceLocation

__all__ = ["VertexType", "PSGVertex", "PSG", "InlinePath"]

#: A static call path: the tuple of call-site statement ids from main down
#: to the function instance a vertex was inlined from.
InlinePath = tuple[int, ...]


class VertexType(Enum):
    ROOT = "Root"
    LOOP = "Loop"
    BRANCH = "Branch"
    COMP = "Comp"
    MPI = "MPI"
    CALL = "Call"  # unresolved (indirect or recursive) call


@dataclass
class PSGVertex:
    vid: int
    vtype: VertexType
    name: str
    location: SourceLocation
    #: Source statement ids folded into this vertex (>1 after contraction).
    stmt_ids: list[int] = field(default_factory=list)
    #: Call path of inlined call-site stmt ids leading to this vertex.
    inline_path: InlinePath = ()
    #: Name of the function the underlying statement(s) came from.
    function: str = ""
    parent: int | None = None
    children: list[int] = field(default_factory=list)
    #: For children of a Branch: which arm ("then"/"else"); else "".
    arm: str = ""
    #: For MPI vertices: which operation.
    mpi_op: MpiOp | None = None
    #: For Call vertices: True when the callee is a function pointer.
    indirect: bool = False
    #: For recursive Call vertices: vid of the already-inlined instance.
    recursion_target: int | None = None
    #: Loop nesting depth (Loop vertices only; 1 = outermost).
    loop_depth: int = 0

    @property
    def label(self) -> str:
        """Display label, e.g. ``MPI_Allreduce`` or ``Loop nudt.F:155``."""
        if self.vtype is VertexType.MPI and self.mpi_op is not None:
            return self.mpi_op.display_name
        if self.name:
            return f"{self.vtype.value} {self.name}"
        return f"{self.vtype.value} {self.location}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PSGVertex({self.vid}, {self.label}, loc={self.location})"


class PSG:
    """The Program Structure Graph of one program (single static copy)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.vertices: dict[int, PSGVertex] = {}
        self._next_id = 0
        self.root_id: int | None = None
        #: (inline_path, stmt_id) -> vid; how runtime samples find vertices.
        self.stmt_index: dict[tuple[InlinePath, int], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def new_vertex(
        self,
        vtype: VertexType,
        name: str,
        location: SourceLocation,
        *,
        stmt_ids: list[int] | None = None,
        inline_path: InlinePath = (),
        function: str = "",
        parent: int | None = None,
        arm: str = "",
        mpi_op: MpiOp | None = None,
        indirect: bool = False,
        loop_depth: int = 0,
    ) -> PSGVertex:
        v = PSGVertex(
            vid=self._next_id,
            vtype=vtype,
            name=name,
            location=location,
            stmt_ids=list(stmt_ids or []),
            inline_path=inline_path,
            function=function,
            parent=parent,
            arm=arm,
            mpi_op=mpi_op,
            indirect=indirect,
            loop_depth=loop_depth,
        )
        self._next_id += 1
        self.vertices[v.vid] = v
        if parent is not None:
            self.vertices[parent].children.append(v.vid)
        if vtype is VertexType.ROOT:
            if self.root_id is not None:
                raise ValueError("PSG already has a root")
            self.root_id = v.vid
        for sid in v.stmt_ids:
            self.stmt_index[(inline_path, sid)] = v.vid
        return v

    @property
    def root(self) -> PSGVertex:
        if self.root_id is None:
            raise ValueError("PSG has no root")
        return self.vertices[self.root_id]

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, vid: int) -> bool:
        return vid in self.vertices

    def vertex(self, vid: int) -> PSGVertex:
        return self.vertices[vid]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def iter_preorder(self, start: int | None = None) -> Iterator[PSGVertex]:
        """Depth-first pre-order over the structural tree."""
        start_id = self.root_id if start is None else start
        if start_id is None:
            return
        stack = [start_id]
        while stack:
            vid = stack.pop()
            v = self.vertices[vid]
            yield v
            stack.extend(reversed(v.children))

    def subtree_ids(self, vid: int) -> list[int]:
        return [v.vid for v in self.iter_preorder(vid)]

    def prev_in_order(self, vid: int) -> int | None:
        """Backward data-dependence step: previous sibling, else parent."""
        v = self.vertices[vid]
        if v.parent is None:
            return None
        siblings = self.vertices[v.parent].children
        idx = siblings.index(vid)
        if idx > 0:
            return siblings[idx - 1]
        return v.parent

    def last_body_vertex(self, vid: int) -> int | None:
        """Backward control-dependence step for a Loop/Branch: the last
        vertex of its body (``None`` for an empty body)."""
        children = self.vertices[vid].children
        return children[-1] if children else None

    def depth_of(self, vid: int) -> int:
        """Distance to the root along parent links."""
        depth = 0
        v = self.vertices[vid]
        while v.parent is not None:
            depth += 1
            v = self.vertices[v.parent]
        return depth

    def has_mpi_in_subtree(self, vid: int) -> bool:
        return any(v.vtype is VertexType.MPI for v in self.iter_preorder(vid))

    # ------------------------------------------------------------------
    # statistics (Table II)
    # ------------------------------------------------------------------

    def count_by_type(self) -> dict[VertexType, int]:
        counts = {t: 0 for t in VertexType}
        for v in self.vertices.values():
            counts[v.vtype] += 1
        return counts

    def stats(self) -> dict[str, int]:
        by_type = self.count_by_type()
        return {
            "total": len(self.vertices),
            "loop": by_type[VertexType.LOOP],
            "branch": by_type[VertexType.BRANCH],
            "comp": by_type[VertexType.COMP],
            "mpi": by_type[VertexType.MPI],
            "call": by_type[VertexType.CALL],
        }

    # ------------------------------------------------------------------
    # queries used by detection / reports
    # ------------------------------------------------------------------

    def mpi_vertices(self) -> list[PSGVertex]:
        return [v for v in self.vertices.values() if v.vtype is VertexType.MPI]

    def find_by_location(self, filename: str, line: int) -> list[PSGVertex]:
        return [
            v
            for v in self.vertices.values()
            if v.location.filename == filename and v.location.line == line
        ]

    def calling_path(self, vid: int) -> list[PSGVertex]:
        """Vertices from the root down to ``vid`` (inclusive)."""
        path = []
        v = self.vertices[vid]
        while True:
            path.append(v)
            if v.parent is None:
                break
            v = self.vertices[v.parent]
        path.reverse()
        return path

    def lookup_stmt(self, inline_path: InlinePath, stmt_id: int) -> int | None:
        """Resolve a runtime (call-path, statement) to a PSG vertex id.

        Falls back to progressively shorter inline paths so that samples in
        recursive instances (which are *not* inlined beyond the first level)
        still land on the representative vertex.
        """
        path = tuple(inline_path)
        while True:
            vid = self.stmt_index.get((path, stmt_id))
            if vid is not None:
                return vid
            if not path:
                return None
            path = path[:-1]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Directed graph with structural + execution-order + cycle edges.

        Edge ``kind`` attribute: ``control`` (structure vertex -> child),
        ``seq`` (sibling execution order), ``recursion`` (call cycle).
        """
        g = nx.DiGraph(name=self.name)
        for v in self.vertices.values():
            g.add_node(
                v.vid,
                vtype=v.vtype.value,
                label=v.label,
                location=str(v.location),
            )
        for v in self.vertices.values():
            for i, child in enumerate(v.children):
                g.add_edge(v.vid, child, kind="control")
                if i > 0:
                    g.add_edge(v.children[i - 1], child, kind="seq")
            if v.recursion_target is not None:
                g.add_edge(v.vid, v.recursion_target, kind="recursion")
        return g
