"""PSG contraction (paper §III-A, third phase).

Complete PSGs are too large for efficient runtime annotation, so ScalAna
contracts them under two rules, both of which this module implements:

1. **Communication is sacred** — every MPI vertex and every control
   structure containing one is preserved.
2. **Computation is summarized** — structures without MPI keep only their
   Loops (loop iterations may dominate performance), bounded by the
   user-defined ``MaxLoopDepth``; everything else collapses into ``Comp``
   vertices, and consecutive sibling ``Comp`` vertices merge into one
   (Fig. 4(c): sequential Loop1.1/Loop1.2 merge when MaxLoopDepth = 1).

Contraction mutates a *copy* of the PSG and keeps ``stmt_index`` consistent:
every absorbed (inline path, statement) key still resolves — to the
surviving merged vertex — so runtime samples taken anywhere inside
contracted code attribute correctly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.psg.graph import PSG, VertexType

__all__ = ["ContractionResult", "contract_psg", "DEFAULT_MAX_LOOP_DEPTH"]

#: The paper's evaluation setting (§VI-A).
DEFAULT_MAX_LOOP_DEPTH = 10


@dataclass(frozen=True)
class ContractionResult:
    """The contracted graph plus the statistics Table II reports."""

    psg: PSG
    vertices_before: int
    vertices_after: int

    @property
    def reduction(self) -> float:
        """Fraction of vertices removed (paper reports 68% on average)."""
        if self.vertices_before == 0:
            return 0.0
        return 1.0 - self.vertices_after / self.vertices_before


def contract_psg(
    psg: PSG, max_loop_depth: int = DEFAULT_MAX_LOOP_DEPTH
) -> ContractionResult:
    """Contract ``psg`` (non-destructively) with the given ``MaxLoopDepth``."""
    if max_loop_depth < 0:
        raise ValueError("max_loop_depth must be >= 0")
    before = len(psg)
    out = copy.deepcopy(psg)
    remap: dict[int, int] = {}
    _contract_structures(out, max_loop_depth, remap)
    _merge_comp_runs(out, remap)
    _reindex(out, remap)
    return ContractionResult(psg=out, vertices_before=before, vertices_after=len(out))


# ----------------------------------------------------------------------
# phase 1: dissolve MPI-free structures
# ----------------------------------------------------------------------


def _subtree_has_mpi(psg: PSG) -> dict[int, bool]:
    """Per-vertex flag: does the subtree contain any MPI vertex?"""
    has_mpi: dict[int, bool] = {}
    order: list[int] = []
    stack = [psg.root_id]
    while stack:
        vid = stack.pop()
        order.append(vid)
        stack.extend(psg.vertices[vid].children)
    for vid in reversed(order):
        v = psg.vertices[vid]
        flag = v.vtype is VertexType.MPI
        for c in v.children:
            flag = flag or has_mpi[c]
        has_mpi[vid] = flag
    return has_mpi


def _absorb_subtree(psg: PSG, vid: int, target: int, remap: dict[int, int]) -> list[int]:
    """Collect the stmt ids of the subtree under ``vid`` (exclusive of the
    vertex itself), deleting the descendants and recording their remap."""
    v = psg.vertices[vid]
    stmt_ids: list[int] = []
    for child in list(v.children):
        c = psg.vertices[child]
        stmt_ids.extend(c.stmt_ids)
        stmt_ids.extend(_absorb_subtree(psg, child, target, remap))
        remap[child] = target
        del psg.vertices[child]
    v.children.clear()
    return stmt_ids


def _contract_structures(psg: PSG, max_loop_depth: int, remap: dict[int, int]) -> None:
    """Convert MPI-free Branches and too-deep MPI-free Loops into Comp."""
    has_mpi = _subtree_has_mpi(psg)

    # Walk bottom-up so inner conversions happen before outer decisions.
    order: list[int] = []
    stack = [psg.root_id]
    while stack:
        vid = stack.pop()
        order.append(vid)
        stack.extend(psg.vertices[vid].children)

    for vid in reversed(order):
        v = psg.vertices.get(vid)
        if v is None:  # already absorbed into an ancestor
            continue
        if has_mpi[vid]:
            continue
        convert = False
        if v.vtype is VertexType.LOOP and v.loop_depth > max_loop_depth:
            convert = True
        elif v.vtype is VertexType.BRANCH:
            # Dissolve unless it still holds a preserved Loop.
            keeps_loop = any(
                psg.vertices[d].vtype is VertexType.LOOP
                for d in psg.subtree_ids(vid)
                if d != vid
            )
            convert = not keeps_loop
        if convert:
            absorbed = _absorb_subtree(psg, vid, vid, remap)
            v.vtype = VertexType.COMP
            v.stmt_ids = v.stmt_ids + absorbed
            v.mpi_op = None
            v.loop_depth = 0


# ----------------------------------------------------------------------
# phase 2: merge consecutive Comp siblings
# ----------------------------------------------------------------------


def _merge_comp_runs(psg: PSG, remap: dict[int, int]) -> None:
    for vid in list(psg.vertices):
        v = psg.vertices.get(vid)
        if v is None:
            continue
        new_children: list[int] = []
        run_head: int | None = None
        for child_id in v.children:
            child = psg.vertices[child_id]
            # Only merge within the same branch arm: then/else bodies are
            # alternative control flow, not sequential computation.
            if child.vtype is VertexType.COMP:
                if (
                    run_head is not None
                    and psg.vertices[run_head].arm == child.arm
                ):
                    head = psg.vertices[run_head]
                    head.stmt_ids.extend(child.stmt_ids)
                    remap[child_id] = run_head
                    del psg.vertices[child_id]
                    continue
                run_head = child_id
            else:
                run_head = None
            new_children.append(child_id)
        v.children = new_children


# ----------------------------------------------------------------------
# phase 3: rebuild the statement index
# ----------------------------------------------------------------------


def _resolve(remap: dict[int, int], vid: int) -> int:
    seen = set()
    while vid in remap:
        if vid in seen:  # pragma: no cover - defensive
            raise RuntimeError("cycle in contraction remap")
        seen.add(vid)
        vid = remap[vid]
    return vid


def _reindex(psg: PSG, remap: dict[int, int]) -> None:
    """Follow remap chains so every original index key resolves to a
    surviving vertex."""
    new_index: dict[tuple[tuple[int, ...], int], int] = {}
    for key, vid in psg.stmt_index.items():
        final = _resolve(remap, vid)
        if final in psg.vertices:
            new_index[key] = final
    psg.stmt_index = new_index
