"""Intra-procedural PSG construction (paper §III-A, first phase).

Builds a *local* PSG per function: a Root vertex for the function entry,
then one vertex per Loop / Branch / MPI call / computation / user call, in
execution order.  Scalar bookkeeping statements (declarations, assignments,
returns) carry no measurable workload and are not materialized — the paper's
``Comp`` vertices are "collections of computation instructions", which for
MiniMPI means ``compute`` statements.

The builder also cross-checks its structural view against the dataflow
view: the number of Loop vertices must equal the number of natural loops
detected on the function's CFG (:mod:`repro.ir.loops`).  A mismatch would
mean the frontend and the middle-end disagree about program structure, so it
raises instead of producing a silently wrong graph.
"""

from __future__ import annotations

from repro.ir.cfg import build_cfg
from repro.ir.loops import find_natural_loops
from repro.minilang import ast_nodes as ast
from repro.psg.graph import PSG, VertexType

__all__ = ["build_local_psg", "StructureMismatchError"]


class StructureMismatchError(RuntimeError):
    """CFG-derived and AST-derived loop structure disagree."""


def build_local_psg(func: ast.FunctionDef, *, verify_cfg: bool = True) -> PSG:
    """Build the local PSG of one function."""
    psg = PSG(name=func.name)
    root = psg.new_vertex(
        VertexType.ROOT,
        name=func.name,
        location=func.location,
        function=func.name,
    )
    _lower_block(psg, func.body, parent=root.vid, func_name=func.name, depth=0)

    if verify_cfg:
        cfg = build_cfg(func)
        cfg_loops = find_natural_loops(cfg)
        psg_loops = [
            v for v in psg.vertices.values() if v.vtype is VertexType.LOOP
        ]
        if len(cfg_loops) != len(psg_loops):
            raise StructureMismatchError(
                f"{func.name}: CFG found {len(cfg_loops)} natural loops but the "
                f"PSG has {len(psg_loops)} Loop vertices"
            )
        cfg_depths = sorted(lp.depth for lp in cfg_loops)
        psg_depths = sorted(v.loop_depth for v in psg_loops)
        if cfg_depths != psg_depths:
            raise StructureMismatchError(
                f"{func.name}: loop nesting depths disagree "
                f"(CFG {cfg_depths} vs PSG {psg_depths})"
            )
    _prune_empty_structures(psg)
    return psg


def _prune_empty_structures(psg: PSG) -> None:
    """Remove Loop/Branch vertices whose bodies produced no vertices.

    Such structures contain only scalar bookkeeping (e.g. computing a peer
    rank); they carry no measurable workload and would only inflate vertex
    counts.  Pruning runs bottom-up so nested empty structures collapse.
    """
    changed = True
    while changed:
        changed = False
        for vid in list(psg.vertices):
            v = psg.vertices.get(vid)
            if v is None or v.parent is None:
                continue
            if v.vtype in (VertexType.LOOP, VertexType.BRANCH) and not v.children:
                parent = psg.vertices[v.parent]
                parent.children.remove(vid)
                for sid in v.stmt_ids:
                    psg.stmt_index.pop((v.inline_path, sid), None)
                del psg.vertices[vid]
                changed = True


def _lower_block(
    psg: PSG, block: ast.Block, *, parent: int, func_name: str, depth: int
) -> None:
    for stmt in block.statements:
        if isinstance(stmt, ast.ComputeStmt):
            psg.new_vertex(
                VertexType.COMP,
                name=stmt.name or str(stmt.location),
                location=stmt.location,
                stmt_ids=[stmt.stmt_id],
                function=func_name,
                parent=parent,
            )
        elif isinstance(stmt, ast.MpiStmt):
            psg.new_vertex(
                VertexType.MPI,
                name=stmt.op.display_name,
                location=stmt.location,
                stmt_ids=[stmt.stmt_id],
                function=func_name,
                parent=parent,
                mpi_op=stmt.op,
            )
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
            loop = psg.new_vertex(
                VertexType.LOOP,
                name=f"{func_name}@{stmt.location.line}",
                location=stmt.location,
                stmt_ids=[stmt.stmt_id],
                function=func_name,
                parent=parent,
                loop_depth=depth + 1,
            )
            _lower_block(
                psg, stmt.body, parent=loop.vid, func_name=func_name, depth=depth + 1
            )
        elif isinstance(stmt, ast.IfStmt):
            branch = psg.new_vertex(
                VertexType.BRANCH,
                name=f"{func_name}@{stmt.location.line}",
                location=stmt.location,
                stmt_ids=[stmt.stmt_id],
                function=func_name,
                parent=parent,
            )
            _lower_block(
                psg,
                stmt.then_body,
                parent=branch.vid,
                func_name=func_name,
                depth=depth,
            )
            then_count = len(branch.children)
            for vid in branch.children:
                psg.vertices[vid].arm = "then"
            if stmt.else_body is not None:
                _lower_block(
                    psg,
                    stmt.else_body,
                    parent=branch.vid,
                    func_name=func_name,
                    depth=depth,
                )
                for vid in branch.children[then_count:]:
                    psg.vertices[vid].arm = "else"
        elif isinstance(stmt, ast.CallStmt):
            callee = stmt.callee
            name = callee.name if isinstance(callee, ast.VarRef) else "<indirect>"
            psg.new_vertex(
                VertexType.CALL,
                name=name,
                location=stmt.location,
                stmt_ids=[stmt.stmt_id],
                function=func_name,
                parent=parent,
                indirect=not isinstance(callee, ast.VarRef),
            )
        elif isinstance(stmt, (ast.VarDecl, ast.Assign, ast.ReturnStmt)):
            # Scalar bookkeeping: no vertex (negligible workload, paper §III-A
            # contraction rationale).
            continue
        else:  # pragma: no cover - parser cannot currently produce others
            raise TypeError(f"unexpected statement {type(stmt).__name__}")
