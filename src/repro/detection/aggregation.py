"""Cross-process aggregation strategies for non-scalable vertex detection.

Paper §IV-A: "The simplest strategy is to use the performance data for a
particular process ... Another strategy is to use the mean or median value
... and the performance variance among different processes to reflect load
distribution.  We can also partition all processes into different groups by
clustering algorithms and then aggregate for each group.  In our
implementation, we test all strategies mentioned above."

All of them are implemented here and ablated in
``benchmarks/bench_ablation_aggregation.py``.
"""

from __future__ import annotations

from enum import Enum
from collections.abc import Sequence

import numpy as np

__all__ = ["AggregationStrategy", "aggregate", "cluster_processes"]


class AggregationStrategy(Enum):
    SINGLE_PROCESS = "single"  # rank 0's value
    MEAN = "mean"
    MEDIAN = "median"
    MAX = "max"
    #: mean + one standard deviation: penalizes imbalanced vertices
    VARIANCE_AWARE = "variance"
    #: mean of the slowest cluster (1-D 2-means)
    CLUSTERED = "clustered"


def cluster_processes(values: Sequence[float], k: int = 2) -> list[int]:
    """1-D k-means labels for per-process values (deterministic init).

    Initializes centroids at evenly spaced quantiles, runs Lloyd's
    iterations to convergence.  Returns a label per process, where labels
    are ordered by ascending centroid (label k-1 = slowest group).
    """
    if not isinstance(values, (list, tuple, np.ndarray)):
        values = list(values)  # accept generators without double-copying lists
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot cluster an empty sequence")
    k = min(k, arr.size)
    centroids = np.quantile(arr, np.linspace(0.0, 1.0, k))
    # ensure distinct starting centroids
    for i in range(1, k):
        if centroids[i] <= centroids[i - 1]:
            centroids[i] = centroids[i - 1] + 1e-12
    labels = np.zeros(arr.size, dtype=int)
    for _ in range(100):
        dists = np.abs(arr[:, None] - centroids[None, :])
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = arr[labels == j]
            if members.size:
                centroids[j] = members.mean()
    order = np.argsort(centroids)
    relabel = {int(old): rank for rank, old in enumerate(order)}
    return [relabel[int(lab)] for lab in labels]


def aggregate(
    values: Sequence[float], strategy: AggregationStrategy = AggregationStrategy.MEAN
) -> float:
    """Merge per-process values of one vertex into a scalar for fitting."""
    if not isinstance(values, (list, tuple, np.ndarray)):
        values = list(values)  # accept generators without double-copying lists
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot aggregate an empty sequence")
    if strategy is AggregationStrategy.SINGLE_PROCESS:
        return float(arr[0])
    if strategy is AggregationStrategy.MEAN:
        return float(arr.mean())
    if strategy is AggregationStrategy.MEDIAN:
        return float(np.median(arr))
    if strategy is AggregationStrategy.MAX:
        return float(arr.max())
    if strategy is AggregationStrategy.VARIANCE_AWARE:
        return float(arr.mean() + arr.std())
    if strategy is AggregationStrategy.CLUSTERED:
        labels = np.asarray(cluster_processes(arr, k=2))
        slowest = arr[labels == labels.max()]
        return float(slowest.mean())
    raise ValueError(f"unknown strategy {strategy!r}")
