"""Root-cause reporting: turning paths into ``file:line`` diagnoses.

ScalAna "reports back to the programmer which lines of the source code
cause the problems" (§II) and its GUI lists "the root cause vertices and
their calling paths ... sorted according to the length of execution time
and the imbalance among different parallel processes" (§V).  This module is
the text equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.abnormal import AbnormalVertex
from repro.detection.backtracking import RootCausePath
from repro.detection.nonscalable import NonScalableVertex
from repro.ppg.build import PPG
from repro.util.stats import relative_imbalance

__all__ = ["RootCause", "DetectionReport", "build_report"]


@dataclass(frozen=True)
class RootCause:
    """One diagnosed root cause, ready to show to the programmer."""

    vid: int
    label: str
    location: str
    function: str
    #: symptom this cause explains (the path's starting vertex)
    symptom_vid: int
    symptom_label: str
    symptom_location: str
    #: ranks traversed by the causal path
    path_ranks: tuple[int, ...]
    #: locations along the path, symptom -> cause
    path_locations: tuple[str, ...]
    mean_time: float
    imbalance: float
    score: float


@dataclass
class DetectionReport:
    nprocs: int
    scales: tuple[int, ...]
    non_scalable: list[NonScalableVertex] = field(default_factory=list)
    abnormal: list[AbnormalVertex] = field(default_factory=list)
    paths: list[RootCausePath] = field(default_factory=list)
    root_causes: list[RootCause] = field(default_factory=list)
    detection_seconds: float = 0.0
    #: Execution metrics of the runs behind this report (attached by
    #: ``Pipeline.detect`` when ``AnalysisConfig.obs_metrics`` is set;
    #: None otherwise).  Provenance only — excluded from canonical report
    #: comparisons (see :func:`repro.api.artifacts.canonical_report_sha`),
    #: and the ``metrics`` JSON section appears only when present, so
    #: metrics-off documents are byte-identical to pre-obs ones.
    metrics: object | None = None

    def cause_locations(self) -> list[str]:
        return [rc.location for rc in self.root_causes]

    def to_json_dict(self) -> dict:
        """A machine-readable document (the ``--json`` CLI output).

        Everything a downstream script needs to act on the diagnosis:
        ranked root causes with their paths, plus the flagged vertices
        each detector produced.  Plain JSON types only.
        """
        return {
            "format": "scalana-report-v1",
            "nprocs": self.nprocs,
            "scales": list(self.scales),
            "detection_seconds": self.detection_seconds,
            "non_scalable": [
                {
                    "vid": v.vid,
                    "alpha": v.fit.alpha,
                    "r2": v.fit.r2,
                    "times": list(v.times),
                    "scales": list(v.scales),
                    "time_fraction": v.time_fraction,
                    "score": v.score,
                }
                for v in self.non_scalable
            ],
            "abnormal": [
                {
                    "vid": v.vid,
                    "imbalance": v.imbalance,
                    "mean_time": v.mean_time,
                    "max_time": v.max_time,
                    "abnormal_ranks": list(v.abnormal_ranks),
                }
                for v in self.abnormal
            ],
            "paths": [
                {
                    "start": list(p.start),
                    "nodes": [list(n) for n in p.nodes],
                    "terminated": p.terminated,
                }
                for p in self.paths
            ],
            "root_causes": [
                {
                    "rank": i,
                    "vid": rc.vid,
                    "label": rc.label,
                    "location": rc.location,
                    "function": rc.function,
                    "symptom_vid": rc.symptom_vid,
                    "symptom_label": rc.symptom_label,
                    "symptom_location": rc.symptom_location,
                    "path_ranks": list(rc.path_ranks),
                    "path_locations": list(rc.path_locations),
                    "mean_time": rc.mean_time,
                    "imbalance": rc.imbalance,
                    "score": rc.score,
                }
                for i, rc in enumerate(self.root_causes, 1)
            ],
            **(
                {"metrics": self.metrics.to_json_dict()}
                if self.metrics is not None
                else {}
            ),
        }

    def render(self, max_causes: int = 10) -> str:
        lines = [
            f"ScalAna detection report ({self.nprocs} processes, "
            f"scales {list(self.scales)})",
            f"  non-scalable vertices: {len(self.non_scalable)}",
            f"  abnormal vertices:     {len(self.abnormal)}",
            f"  causal paths:          {len(self.paths)}",
            "",
            "Root causes (most severe first):",
        ]
        if not self.root_causes:
            lines.append("  (none found)")
        for i, rc in enumerate(self.root_causes[:max_causes], 1):
            lines.append(
                f"  {i}. {rc.label} at {rc.location}  "
                f"[imbalance {rc.imbalance:.2f}x, mean {rc.mean_time:.4f}s]"
            )
            lines.append(
                f"     symptom: {rc.symptom_label} at {rc.symptom_location}"
            )
            lines.append(
                "     path: "
                + " <- ".join(_dedup_consecutive(rc.path_locations))
                + f"  (ranks {list(rc.path_ranks)})"
            )
        return "\n".join(lines)


def _dedup_consecutive(items: tuple[str, ...]) -> list[str]:
    out: list[str] = []
    for item in items:
        if not out or out[-1] != item:
            out.append(item)
    return out


def build_report(
    ppg: PPG,
    scales: tuple[int, ...],
    non_scalable: list[NonScalableVertex],
    abnormal: list[AbnormalVertex],
    paths: list[RootCausePath],
    detection_seconds: float = 0.0,
) -> DetectionReport:
    """Assemble and rank the final report from detector outputs."""
    causes: dict[tuple[int, int], RootCause] = {}
    for path in paths:
        if not path.nodes:
            continue
        cause = path.cause_node(ppg)
        cvid = cause[1]
        cv = ppg.psg.vertices[cvid]
        sv = ppg.psg.vertices[path.start[1]]
        times = ppg.vertex_times(cvid)
        mean_time = sum(times) / len(times) if times else 0.0
        imbalance = relative_imbalance(times) if any(t > 0 for t in times) else 1.0
        key = (cvid, path.start[1])
        if key in causes:
            continue
        causes[key] = RootCause(
            vid=cvid,
            label=cv.label,
            location=str(cv.location),
            function=cv.function,
            symptom_vid=path.start[1],
            symptom_label=sv.label,
            symptom_location=str(sv.location),
            path_ranks=tuple(path.ranks()),
            path_locations=tuple(
                str(ppg.psg.vertices[vid].location) for _r, vid in path.nodes
            ),
            mean_time=mean_time,
            imbalance=imbalance,
            score=mean_time * imbalance,
        )
    ranked = sorted(causes.values(), key=lambda rc: -rc.score)
    return DetectionReport(
        nprocs=ppg.nprocs,
        scales=scales,
        non_scalable=non_scalable,
        abnormal=abnormal,
        paths=paths,
        root_causes=ranked,
        detection_seconds=detection_seconds,
    )
