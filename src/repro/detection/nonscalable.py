"""Non-scalable vertex detection (paper §IV-A).

"The core idea is to find vertices in the PPG whose performance shows an
unusual slope comparing with other vertices when the number of processes
increases. ... we fit the merged data of different process counts with a
log-log model.  With these fitting results, we sort all vertices by the
changing rate of each vertex when the scale increases and filter the
top-ranked vertices as the potential non-scalable vertices."

For strong scaling, ideal work shrinks like ``P**-1`` (slope -1); serial or
contended vertices have slopes near or above 0.  A vertex is flagged when

* its log-log slope exceeds the *population* slope by an outlier margin
  (median + ``mad_k`` median-absolute-deviations) **or** an absolute slope
  threshold, and
* its time at the largest scale is a non-trivial fraction of total time
  ("when the execution time of these vertices accounts for a large
  proportion of the total time, they will become a scaling issue").
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.detection.aggregation import AggregationStrategy, aggregate
from repro.ppg.build import PPG
from repro.util.stats import LogLogFit, loglog_fit

__all__ = ["NonScalableVertex", "NonScalableConfig", "detect_non_scalable"]


@dataclass(frozen=True)
class NonScalableConfig:
    strategy: AggregationStrategy = AggregationStrategy.MEAN
    #: flag when slope > population median + mad_k * MAD ...
    mad_k: float = 3.0
    #: ... or when slope exceeds this absolute value outright.
    slope_threshold: float = -0.25
    #: minimum share of total time at the largest scale
    min_time_fraction: float = 0.01
    #: keep at most this many vertices (paper: "filter the top-ranked")
    top_k: int = 10


@dataclass(frozen=True)
class NonScalableVertex:
    vid: int
    fit: LogLogFit
    times: tuple[float, ...]  # aggregated time per scale
    scales: tuple[int, ...]
    time_fraction: float  # of total time at the largest scale
    score: float  # severity: slope weighted by time share

    @property
    def slope(self) -> float:
        return self.fit.alpha


def detect_non_scalable(
    ppgs: Sequence[PPG],
    config: NonScalableConfig | None = None,
) -> list[NonScalableVertex]:
    """Detect non-scalable vertices from runs at multiple scales.

    ``ppgs`` must come from the *same* PSG at two or more distinct process
    counts (the location-aware premise: "the per-process PSG does not change
    with the problem size or job scale").
    """
    config = config or NonScalableConfig()
    if len(ppgs) < 2:
        raise ValueError("need runs at >= 2 scales to fit scaling slopes")
    psg = ppgs[0].psg
    for ppg in ppgs[1:]:
        if ppg.psg is not psg and len(ppg.psg) != len(psg):
            raise ValueError("all PPGs must share the same PSG")
    scales = [ppg.nprocs for ppg in ppgs]
    if len(set(scales)) != len(scales):
        raise ValueError("duplicate scales in input runs")
    order = np.argsort(scales)
    ppgs = [ppgs[i] for i in order]
    scales = [scales[i] for i in order]

    largest = ppgs[-1]
    total_time_at_largest = sum(
        aggregate(largest.vertex_times(vid), config.strategy)
        for vid in psg.vertices
    )
    if total_time_at_largest <= 0:
        return []

    fits: dict[int, tuple[LogLogFit, tuple[float, ...], float]] = {}
    for vid in psg.vertices:
        series = [
            aggregate(ppg.vertex_times(vid), config.strategy) for ppg in ppgs
        ]
        if max(series) <= 0.0:
            continue  # never sampled anywhere
        fit = loglog_fit(scales, series)
        fraction = series[-1] / total_time_at_largest
        fits[vid] = (fit, tuple(series), fraction)

    if not fits:
        return []

    slopes = np.array([f.alpha for f, _s, _fr in fits.values()])
    median = float(np.median(slopes))
    mad = float(np.median(np.abs(slopes - median)))
    outlier_cut = median + config.mad_k * max(mad, 1e-9)

    flagged: list[NonScalableVertex] = []
    for vid, (fit, series, fraction) in fits.items():
        if fraction < config.min_time_fraction:
            continue
        if fit.alpha <= outlier_cut and fit.alpha <= config.slope_threshold:
            continue
        flagged.append(
            NonScalableVertex(
                vid=vid,
                fit=fit,
                times=series,
                scales=tuple(scales),
                time_fraction=fraction,
                score=(fit.alpha + 1.0) * fraction,
            )
        )
    flagged.sort(key=lambda v: -v.score)
    return flagged[: config.top_k]
