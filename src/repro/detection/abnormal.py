"""Abnormal vertex detection (paper §IV-A).

"For a given job scale, we can also compare the performance data of the
same vertex among different processes.  Since for typical SPMD programs,
the same vertex tends to execute the same workload among different
processes.  If a vertex has significantly different execution time, we can
mark this vertex as a potential abnormal vertex."

The threshold is the user-defined ``AbnormThd`` (paper default 1.3): a
vertex is abnormal when ``max(time) / mean(time) > AbnormThd``; the
*abnormal ranks* are those whose time exceeds ``AbnormThd * mean``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppg.build import PPG

__all__ = ["AbnormalVertex", "AbnormalConfig", "detect_abnormal", "DEFAULT_ABNORM_THD"]

#: The paper's evaluation setting (§VI-A).
DEFAULT_ABNORM_THD = 1.3


@dataclass(frozen=True)
class AbnormalConfig:
    abnorm_thd: float = DEFAULT_ABNORM_THD
    #: ignore vertices whose mean time is below this share of the mean
    #: total rank time (measurement noise floor).
    min_time_fraction: float = 0.005


@dataclass(frozen=True)
class AbnormalVertex:
    vid: int
    imbalance: float  # max / mean
    mean_time: float
    max_time: float
    abnormal_ranks: tuple[int, ...]  # ranks exceeding AbnormThd * mean

    @property
    def worst_rank(self) -> int:
        return self.abnormal_ranks[0]


def detect_abnormal(
    ppg: PPG, config: AbnormalConfig | None = None
) -> list[AbnormalVertex]:
    """Find vertices with significantly imbalanced time across ranks."""
    config = config or AbnormalConfig()
    if config.abnorm_thd <= 1.0:
        raise ValueError("AbnormThd must be > 1.0")
    total_mean_time = (
        sum(sum(ppg.vertex_times(vid)) for vid in ppg.psg.vertices) / ppg.nprocs
    )
    floor = total_mean_time * config.min_time_fraction

    out: list[AbnormalVertex] = []
    for vid in ppg.psg.vertices:
        times = np.asarray(ppg.vertex_times(vid), dtype=float)
        mean = float(times.mean())
        if mean <= 0.0 or mean < floor:
            continue
        peak = float(times.max())
        imbalance = peak / mean
        if imbalance <= config.abnorm_thd:
            continue
        cut = config.abnorm_thd * mean
        ranks = np.where(times > cut)[0]
        # order abnormal ranks by decreasing excess time
        ranks = sorted((int(r) for r in ranks), key=lambda r: -times[r])
        out.append(
            AbnormalVertex(
                vid=vid,
                imbalance=imbalance,
                mean_time=mean,
                max_time=peak,
                abnormal_ranks=tuple(ranks),
            )
        )
    out.sort(key=lambda a: -(a.imbalance * a.mean_time))
    return out
