"""Backtracking root-cause detection (paper §IV-B, Algorithm 1).

Starting from each detected non-scalable vertex (then from uncovered
abnormal vertices), the algorithm walks *backward* over the PPG:

* at an **MPI vertex** it follows the inter-process communication
  dependence edge — jumping to the matched sender's vertex on the sending
  rank (for collectives: to the laggard rank everyone waited for);
  communication edges without observed waiting events are pruned away at
  PPG construction, which shrinks the search space and avoids false paths,
* at an **unscanned Loop/Branch vertex** it follows only the control
  dependence edge, descending to the end of the structure's body ("the
  traversal continues from the end vertex of this loop"),
* otherwise it follows the data-dependence edge (the previous vertex in
  execution order on the same rank),

stopping at root vertices or at collective communication vertices (which
synchronize every rank, so no delay propagates backward through them).

The result is a set of causal paths connecting the problematic vertices;
each path's *root cause* is its deepest computation/loop vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.detection.abnormal import AbnormalVertex
from repro.detection.nonscalable import NonScalableVertex
from repro.ppg.build import PPG, PPGNode
from repro.psg.graph import VertexType

__all__ = ["RootCausePath", "BacktrackConfig", "backtrack_root_causes", "backtrack_from"]

#: Hard bound on one walk — a correct walk terminates long before this.
_MAX_STEPS = 100_000


@dataclass(frozen=True)
class BacktrackConfig:
    max_steps: int = _MAX_STEPS


@dataclass
class RootCausePath:
    """One causal path, from symptom backwards to cause."""

    start: PPGNode
    nodes: list[PPGNode] = field(default_factory=list)
    #: why the walk terminated: "root" | "collective" | "exhausted" | "cycle"
    terminated: str = ""

    def __len__(self) -> int:
        return len(self.nodes)

    def ranks(self) -> list[int]:
        """Distinct ranks the path traverses, in first-visit order."""
        seen: list[int] = []
        for rank, _vid in self.nodes:
            if rank not in seen:
                seen.append(rank)
        return seen

    def cause_node(self, ppg: PPG) -> PPGNode:
        """The root cause on this path: the most *significant* Comp/Loop
        vertex reached while walking backward, scored by mean time times
        cross-rank imbalance (zero-cost structure vertices traversed on the
        way never win).  Ties go to the deeper (later-reached) node; falls
        back to the last non-terminal node when the path holds no
        computation at all."""
        best: PPGNode | None = None
        best_score = 0.0
        fallback: PPGNode | None = None
        fallback_mean = -1.0
        for node in reversed(self.nodes):
            vt = ppg.psg.vertices[node[1]].vtype
            if vt not in (VertexType.COMP, VertexType.LOOP):
                continue
            times = ppg.vertex_times(node[1])
            mean = sum(times) / len(times) if times else 0.0
            if mean > fallback_mean:
                fallback, fallback_mean = node, mean
            if mean <= 0.0:
                continue
            # a perfectly balanced vertex cannot make other ranks wait:
            # score by the imbalance *excess*
            imbalance = max(times) / mean
            score = mean * (imbalance - 1.0)
            if score > best_score:
                best, best_score = node, score
        if best is not None:
            return best
        if fallback is not None:
            # every computation on the path is balanced (e.g. an Amdahl
            # serial section): blame the largest one
            return fallback
        return self.nodes[-1] if self.nodes else self.start


def backtrack_from(
    ppg: PPG, start: PPGNode, config: BacktrackConfig | None = None
) -> RootCausePath:
    """Run one backward walk (the ``Backtracking`` function of Algorithm 1)."""
    config = config or BacktrackConfig()
    path = RootCausePath(start=start, nodes=[start])
    in_path: set[PPGNode] = {start}
    descended: set[PPGNode] = set()
    v = start

    for _step in range(config.max_steps):
        nxt = _backward_step(ppg, v, descended, is_start=(v == start))
        if nxt is None:
            path.terminated = "exhausted"
            return path
        if ppg.is_root(nxt):
            path.terminated = "root"
            return path
        if nxt in in_path:
            path.terminated = "cycle"
            return path
        path.nodes.append(nxt)
        in_path.add(nxt)
        if ppg.is_collective(nxt) and nxt[1] != v[1]:
            # Arrived at a *different* collective vertex: collectives
            # synchronize every rank, so no delay propagates backward past
            # them.  (A same-vid hop is the laggard jump within the starting
            # collective — the walk continues on the laggard's rank.)
            path.terminated = "collective"
            return path
        v = nxt
    path.terminated = "exhausted"
    return path


def _backward_step(
    ppg: PPG, v: PPGNode, descended: set[PPGNode], *, is_start: bool
) -> PPGNode | None:
    vertex = ppg.psg.vertices[v[1]]
    if vertex.vtype is VertexType.MPI:
        if ppg.is_collective(v):
            laggard = ppg.collective_laggard(v[1])
            if laggard is not None and laggard != v[0]:
                return (laggard, v[1])
            return ppg.data_dep_pred(v)
        comm = ppg.comm_pred(v)
        if comm is not None and comm != v:
            return comm
        return ppg.data_dep_pred(v)
    if vertex.vtype in (VertexType.LOOP, VertexType.BRANCH) and v not in descended:
        descended.add(v)
        inner = ppg.control_dep_pred(v)
        if inner is not None:
            return inner
        return ppg.data_dep_pred(v)
    return ppg.data_dep_pred(v)


def backtrack_root_causes(
    ppg: PPG,
    non_scalable: Sequence[NonScalableVertex],
    abnormal: Sequence[AbnormalVertex],
    config: BacktrackConfig | None = None,
) -> list[RootCausePath]:
    """The ``Main`` function of Algorithm 1.

    Walks from every non-scalable vertex first (starting on the rank where
    it cost the most time), then from abnormal vertices not already covered
    by an earlier path.
    """
    paths: list[RootCausePath] = []
    scanned: set[PPGNode] = set()

    def run(start: PPGNode) -> None:
        p = backtrack_from(ppg, start, config)
        paths.append(p)
        scanned.update(p.nodes)

    for ns in non_scalable:
        times = ppg.vertex_times(ns.vid)
        worst_rank = max(range(ppg.nprocs), key=lambda r: times[r])
        run((worst_rank, ns.vid))

    for ab in abnormal:
        starts = [(r, ab.vid) for r in ab.abnormal_ranks]
        if all(s in scanned for s in starts):
            continue
        start = next(s for s in starts if s not in scanned)
        run(start)

    return paths
