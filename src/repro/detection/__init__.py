"""Scaling loss detection (paper §IV): problematic vertices + root causes.

:func:`detect_scaling_loss` is the offline ``ScalAna-detect`` step: it takes
profiled runs at several scales, builds the PPG of the largest run, flags
non-scalable and abnormal vertices, backtracks root causes, and assembles a
ranked report.
"""

from __future__ import annotations

import time as _time
from collections.abc import Sequence

from repro.detection.abnormal import (
    DEFAULT_ABNORM_THD,
    AbnormalConfig,
    AbnormalVertex,
    detect_abnormal,
)
from repro.detection.aggregation import (
    AggregationStrategy,
    aggregate,
    cluster_processes,
)
from repro.detection.backtracking import (
    BacktrackConfig,
    RootCausePath,
    backtrack_from,
    backtrack_root_causes,
)
from repro.detection.nonscalable import (
    NonScalableConfig,
    NonScalableVertex,
    detect_non_scalable,
)
from repro.detection.report import DetectionReport, RootCause, build_report
from repro.ppg.build import PPG, build_ppg
from repro.runtime import ProfiledRun

__all__ = [
    "AggregationStrategy",
    "aggregate",
    "cluster_processes",
    "NonScalableConfig",
    "NonScalableVertex",
    "detect_non_scalable",
    "AbnormalConfig",
    "AbnormalVertex",
    "detect_abnormal",
    "DEFAULT_ABNORM_THD",
    "BacktrackConfig",
    "RootCausePath",
    "backtrack_from",
    "backtrack_root_causes",
    "DetectionReport",
    "RootCause",
    "build_report",
    "detect_scaling_loss",
]


def detect_scaling_loss(
    runs: Sequence[ProfiledRun],
    *,
    nonscalable_config: NonScalableConfig | None = None,
    abnormal_config: AbnormalConfig | None = None,
    backtrack_config: BacktrackConfig | None = None,
    psg=None,
) -> DetectionReport:
    """Run the full offline detection pipeline over profiled runs.

    ``runs`` must contain at least two scales of the same program; the PPG
    of the largest scale is the one analyzed for abnormality and root
    causes (scaling problems show at scale).
    """
    if not runs:
        raise ValueError("no profiled runs given")
    if psg is None:
        raise ValueError("detect_scaling_loss needs the program's PSG")
    nonscalable_config = nonscalable_config or NonScalableConfig()
    abnormal_config = abnormal_config or AbnormalConfig()
    backtrack_config = backtrack_config or BacktrackConfig()
    t0 = _time.perf_counter()
    runs = sorted(runs, key=lambda r: r.nprocs)
    ppgs = [
        build_ppg(psg, run.nprocs, run.profile, run.comm) for run in runs
    ]
    largest = ppgs[-1]
    non_scalable = (
        detect_non_scalable(ppgs, nonscalable_config) if len(ppgs) >= 2 else []
    )
    abnormal = detect_abnormal(largest, abnormal_config)
    paths = backtrack_root_causes(largest, non_scalable, abnormal, backtrack_config)
    report = build_report(
        largest,
        tuple(r.nprocs for r in runs),
        non_scalable,
        abnormal,
        paths,
        detection_seconds=_time.perf_counter() - t0,
    )
    return report
