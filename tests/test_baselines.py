"""Baseline tool tests: the tracer and the call-path profiler."""

import pytest

from repro.baselines import ProfilerTool, TracerTool
from repro.minilang.parser import parse_program
from repro.psg import build_psg
from repro.runtime import profile_run
from repro.simulator import SimulationConfig

APP = """def main() {
    for (var it = 0; it < 200; it = it + 1) {
        compute(flops = 30000000 / nprocs + 20000000 * (1 - min(rank, 1)),
                name = "hot_loop");
        isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 1024, req = s);
        irecv(src = (rank - 1 + nprocs) % nprocs, tag = 1, req = r);
        waitall();
        allreduce(bytes = 8);
    }
}"""


@pytest.fixture(scope="module")
def setup():
    prog = parse_program(APP, "app.mm")
    psg = build_psg(prog).psg
    config = SimulationConfig(nprocs=8, seed=11)
    return prog, psg, config


class TestTracer:
    def test_trace_has_events_for_everything(self, setup):
        prog, psg, config = setup
        run = TracerTool().run(prog, psg, config)
        assert run.event_count > 0
        kinds = {e.kind for e in run.events}
        assert {"enter", "exit", "mpi_send", "mpi_recv"} <= kinds

    def test_events_time_ordered(self, setup):
        prog, psg, config = setup
        run = TracerTool().run(prog, psg, config)
        times = [e.time for e in run.events]
        assert times == sorted(times)

    def test_storage_scales_with_events(self, setup):
        prog, psg, config = setup
        run = TracerTool().run(prog, psg, config)
        assert run.overhead.storage_bytes > run.event_count * 40

    def test_wait_state_analysis_finds_cause(self, setup):
        """Bohme-style backward replay blames the hot loop on rank 0."""
        prog, psg, config = setup
        tool = TracerTool()
        run = tool.run(prog, psg, config)
        analysis = tool.analyze(run)
        top_wait = analysis.top_wait_vertices(3)
        assert top_wait
        hot = [v for v in psg.vertices.values() if v.name == "hot_loop"][0]
        causes = {analysis.main_cause_of(vid) for vid, _w in top_wait}
        assert hot.vid in causes

    def test_more_ranks_more_storage(self, setup):
        # fixed total work -> fine-grained events stay ~constant, but the
        # per-rank event records still grow with the process count
        prog, psg, _ = setup
        small = TracerTool().run(prog, psg, SimulationConfig(nprocs=4))
        big = TracerTool().run(prog, psg, SimulationConfig(nprocs=16))
        assert big.overhead.storage_bytes > small.overhead.storage_bytes
        assert big.event_count > 2 * small.event_count


class TestProfilerTool:
    def test_hotspots_include_the_hot_loop(self, setup):
        prog, psg, config = setup
        run = ProfilerTool().run(prog, psg, config)
        hotspots = run.profile.hotspots(psg, k=5)
        assert hotspots
        names = {h.label for h in hotspots}
        assert any("hot_loop" in n for n in names)

    def test_hotspots_sorted_by_total_time(self, setup):
        prog, psg, config = setup
        run = ProfilerTool().run(prog, psg, config)
        hotspots = run.profile.hotspots(psg, k=10)
        totals = [h.total_time for h in hotspots]
        assert totals == sorted(totals, reverse=True)

    def test_hotspot_has_callpath_but_no_causal_links(self, setup):
        """The profiler's core limitation: call paths, no inter-vertex
        dependence — exactly what the paper contrasts ScalAna against."""
        prog, psg, config = setup
        run = ProfilerTool().run(prog, psg, config)
        h = run.profile.hotspots(psg, k=1)[0]
        assert h.callpath[0].startswith("Root")
        assert not hasattr(h, "cause")

    def test_imbalance_visible_in_hotspot(self, setup):
        prog, psg, config = setup
        run = ProfilerTool().run(prog, psg, config)
        hot = [
            h for h in run.profile.hotspots(psg, k=10) if "hot_loop" in h.label
        ][0]
        assert hot.imbalance > 1.3

    def test_unwind_cost_exceeds_scalana_sampling(self, setup):
        prog, psg, config = setup
        prof = ProfilerTool().run(prog, psg, config)
        scal = profile_run(prog, psg, config)
        assert prof.overhead.overhead_seconds > scal.overhead.overhead_seconds


class TestThreeToolComparison:
    def test_table1_ordering(self, setup):
        """Table I shape: tracer >> profiler > ScalAna in both time and
        storage."""
        prog, psg, config = setup
        tr = TracerTool().run(prog, psg, config)
        pf = ProfilerTool().run(prog, psg, config)
        sc = profile_run(prog, psg, config)
        # time overhead ordering: both baselines cost more than ScalAna.
        # (This mostly-idle toy app makes tracer-vs-profiler ambiguous; the
        # strict Table I ordering is asserted by the compute-dense bench.)
        assert tr.overhead.overhead_seconds > sc.overhead.overhead_seconds
        assert pf.overhead.overhead_seconds > sc.overhead.overhead_seconds
        # storage ordering (tracer GBs-shape >> profiler MBs >> scalana KBs);
        # the gap grows with run length — the benches at realistic scales
        # show the paper's 3-orders-of-magnitude spread.
        assert tr.overhead.storage_bytes > 3 * pf.overhead.storage_bytes
        assert pf.overhead.storage_bytes > 3 * sc.overhead.storage_bytes

    def test_all_tools_same_ground_truth(self, setup):
        prog, psg, config = setup
        tr = TracerTool().run(prog, psg, config)
        sc = profile_run(prog, psg, config)
        assert tr.result.total_time == sc.result.total_time
