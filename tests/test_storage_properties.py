"""Hypothesis round-trip properties for profile storage."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang.ast_nodes import MpiOp
from repro.runtime import ProfiledRun
from repro.runtime.accounting import OverheadReport
from repro.runtime.interposition import CollectiveGroup, CommDependence, CommEdge
from repro.runtime.perfdata import PerformanceVector
from repro.runtime.sampling import SamplingProfile
from repro.simulator.costmodel import PerfCounters
from repro.tools.storage import load_profile, save_profile

finite = st.floats(min_value=0, max_value=1e12, allow_nan=False)


@st.composite
def synthetic_runs(draw):
    nprocs = draw(st.integers(min_value=1, max_value=8))
    n_vecs = draw(st.integers(min_value=0, max_value=12))
    perf = {}
    for _ in range(n_vecs):
        key = (
            draw(st.integers(min_value=0, max_value=nprocs - 1)),
            draw(st.integers(min_value=0, max_value=30)),
        )
        perf[key] = PerformanceVector(
            time=draw(finite),
            wait=draw(finite),
            visits=draw(st.integers(min_value=0, max_value=1000)),
            counters=PerfCounters(
                tot_ins=draw(finite), tot_cyc=draw(finite),
                tot_lst_ins=draw(finite), l2_dcm=draw(finite),
            ),
        )
    profile = SamplingProfile(
        freq_hz=200.0, nprocs=nprocs,
        total_samples=draw(st.integers(min_value=0, max_value=10**6)),
        perf=perf,
    )
    comm = CommDependence()
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        edge = CommEdge(
            send_rank=draw(st.integers(0, nprocs - 1)),
            send_vid=draw(st.integers(0, 30)),
            recv_rank=draw(st.integers(0, nprocs - 1)),
            recv_vid=draw(st.integers(0, 30)),
            wait_vid=draw(st.integers(0, 30)),
            tag=draw(st.integers(0, 99)),
            nbytes=draw(st.integers(0, 10**9)),
        )
        comm.edges[edge.key()] = edge
        comm.edge_stats[edge.key()] = (
            draw(st.integers(1, 1000)), draw(finite),
        )
    if draw(st.booleans()):
        group = CollectiveGroup(
            mpi_op=draw(st.sampled_from([MpiOp.ALLREDUCE, MpiOp.BARRIER, MpiOp.BCAST])),
            root=0,
            nbytes=draw(st.integers(0, 10**6)),
            vids=tuple((r, 5) for r in range(nprocs)),
        )
        comm.groups[group.key()] = group
        comm.group_stats[group.key()] = (
            draw(st.integers(1, 100)), draw(finite), draw(st.integers(0, nprocs - 1)),
        )
    overhead = OverheadReport(
        tool="ScalAna", app_time=draw(finite) + 1e-9,
        overhead_seconds=draw(finite), storage_bytes=draw(st.integers(0, 10**9)),
    )

    class _Fake:
        pass

    run = ProfiledRun.__new__(ProfiledRun)
    run.nprocs = nprocs
    run.profile = profile
    run.comm = comm
    run.overhead = overhead
    run.result = _Fake()
    run.result.total_time = overhead.app_time
    return run


class TestStorageRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(run=synthetic_runs())
    def test_roundtrip_preserves_everything(self, tmp_path_factory, run):
        path = tmp_path_factory.mktemp("prof") / "p.json"
        save_profile(run, path)
        loaded = load_profile(path)
        assert loaded.nprocs == run.nprocs
        assert set(loaded.profile.perf) == set(run.profile.perf)
        for key, vec in run.profile.perf.items():
            lv = loaded.profile.perf[key]
            assert math.isclose(lv.time, vec.time, rel_tol=1e-12, abs_tol=1e-12)
            assert lv.visits == vec.visits
            assert math.isclose(
                lv.counters.l2_dcm, vec.counters.l2_dcm, rel_tol=1e-12, abs_tol=1e-12
            )
        assert set(loaded.comm.edges) == set(run.comm.edges)
        for key, stats in run.comm.edge_stats.items():
            assert loaded.comm.edge_stats[key][0] == stats[0]
        assert set(loaded.comm.groups) == set(run.comm.groups)
        assert loaded.profile.total_samples == run.profile.total_samples
