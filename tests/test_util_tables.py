"""Tests for table rendering and human-readable formatting."""

import pytest

from repro.util.tables import Table, format_bytes, format_seconds


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(314) == "314 B"

    def test_kilobytes(self):
        assert format_bytes(314 * 1024) == "314.00 KB"

    def test_megabytes(self):
        assert format_bytes(11.45 * 1024 * 1024) == "11.45 MB"

    def test_gigabytes(self):
        assert format_bytes(6.77 * 1024**3) == "6.77 GB"

    def test_terabytes_cap(self):
        assert format_bytes(5 * 1024**4) == "5.00 TB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.5 us"

    def test_milliseconds(self):
        assert format_seconds(0.0035) == "3.50 ms"

    def test_seconds(self):
        assert format_seconds(49.4) == "49.40 s"

    def test_minutes(self):
        assert format_seconds(300) == "5.00 min"


class TestTable:
    def test_render_contains_title_and_cells(self):
        t = Table("My Table", ["a", "bb"])
        t.add_row(1, "x")
        text = t.render()
        assert "My Table" in text
        assert "bb" in text
        assert "x" in text

    def test_alignment_width(self):
        t = Table("T", ["col"])
        t.add_row("longer-cell")
        lines = t.render().splitlines()
        header = [ln for ln in lines if ln.startswith("col")][0]
        assert len(header) == len("longer-cell")

    def test_wrong_cell_count_raises(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_extend(self):
        t = Table("T", ["a"])
        t.extend([[1], [2], [3]])
        assert len(t.rows) == 3

    def test_str_same_as_render(self):
        t = Table("T", ["a"])
        t.add_row(1)
        assert str(t) == t.render()
