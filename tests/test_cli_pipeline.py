"""CLI surface added by the Pipeline/Session rewire: --jobs, --json, sweep."""

import json

import pytest

from repro.tools.cli import main


class TestProfJobs:
    def test_prof_parallel_writes_all_scales(self, tmp_path, capsys):
        out = tmp_path / "profs"
        assert main([
            "prof", "--app", "ep", "--scales", "4,8", "--jobs", "2",
            "--out", str(out),
        ]) == 0
        assert (out / "profile_p4.json").exists()
        assert (out / "profile_p8.json").exists()

    def test_prof_parallel_bytes_match_serial(self, tmp_path):
        serial, parallel = tmp_path / "s", tmp_path / "p"
        main(["prof", "--app", "ep", "--scales", "4,8", "--out", str(serial)])
        main(["prof", "--app", "ep", "--scales", "4,8", "--jobs", "2",
              "--out", str(parallel)])
        for name in ("profile_p4.json", "profile_p8.json"):
            assert (serial / name).read_bytes() == (parallel / name).read_bytes()


class TestJsonOutput:
    def test_run_json_is_machine_readable(self, capsys):
        assert main([
            "run", "--app", "cg", "--scales", "4,8", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "scalana-report-v1"
        assert doc["scales"] == [4, 8]
        assert doc["nprocs"] == 8
        for key in ("root_causes", "non_scalable", "abnormal", "paths"):
            assert isinstance(doc[key], list)

    def test_detect_json_round_trip(self, tmp_path, capsys):
        profdir = tmp_path / "profs"
        main(["prof", "--app", "ep", "--scales", "4,8", "--out", str(profdir)])
        capsys.readouterr()
        assert main([
            "detect", "--app", "ep", "--profiles", str(profdir), "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "scalana-report-v1"
        assert doc["scales"] == [4, 8]

    def test_run_json_reports_planted_delay(self, tmp_path, capsys):
        src = tmp_path / "prog.mm"
        src.write_text(
            "def main() {\n"
            "    for (var i = 0; i < 8; i = i + 1) {\n"
            "        compute(flops = 10000000, name = \"w\");\n"
            "        if (rank == 0) {\n"
            "            compute(flops = 90000000, name = \"slow\");\n"
            "        }\n"
            "        barrier();\n"
            "    }\n"
            "}\n"
        )
        assert main([
            "run", "--source", str(src), "--scales", "4,8", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["root_causes"], "expected at least one root cause"
        assert any("prog.mm" in rc["location"] for rc in doc["root_causes"])


class TestSweep:
    def test_sweep_table_lists_every_cell(self, capsys):
        assert main([
            "sweep", "--apps", "ep,cg", "--scales", "4,8", "--seeds", "0,1",
            "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Sweep: 4 analyses" in out
        assert out.count("ep") >= 2 and out.count("cg") >= 2

    def test_sweep_json(self, capsys):
        assert main([
            "sweep", "--apps", "ep", "--scales", "4,8", "--json",
        ]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["app"] for d in docs] == ["ep"]
        assert docs[0]["report"]["format"] == "scalana-report-v1"

    def test_sweep_cache_reused_across_invocations(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["sweep", "--apps", "ep", "--scales", "4,8",
                "--cache", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 hits / 2 misses" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 hits / 0 misses" in second

    def test_sweep_rejects_single_scale(self):
        with pytest.raises(SystemExit, match=">= 2 scales"):
            main(["sweep", "--apps", "ep", "--scales", "4"])

    def test_sweep_rejects_unknown_app_cleanly(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["sweep", "--apps", "nope", "--scales", "4,8"])

    def test_sweep_rejects_all_invalid_scales_cleanly(self):
        with (
            pytest.warns(UserWarning, match="skipping bt"),
            pytest.raises(SystemExit, match="valid scales"),
        ):
            main(["sweep", "--apps", "bt", "--scales", "5,6"])
