"""Tests for the extended CLI commands (compare / export / timeline)."""

import json
import math

import pytest

from repro.tools.cli import main


class TestCompare:
    def test_compare_prints_three_tools(self, capsys):
        assert main(["compare", "--app", "ep", "--nprocs", "8"]) == 0
        out = capsys.readouterr().out
        assert "Scalasca-like tracer" in out
        assert "HPCToolkit-like profiler" in out
        assert "ScalAna" in out
        assert "wait-state classification" in out


class TestExport:
    def test_export_psg_only(self, tmp_path, capsys):
        out_dir = tmp_path / "graphs"
        assert main(["export", "--app", "cg", "--out", str(out_dir)]) == 0
        assert (out_dir / "psg.dot").exists()
        assert (out_dir / "psg.graphml").exists()
        dot = (out_dir / "psg.dot").read_text()
        assert dot.startswith("digraph PSG")

    def test_export_with_ppg(self, tmp_path):
        out_dir = tmp_path / "graphs"
        assert main([
            "export", "--app", "ep", "--out", str(out_dir), "--nprocs", "4",
        ]) == 0
        assert (out_dir / "ppg_p4.dot").exists()


class TestTimeline:
    def test_timeline_renders(self, capsys):
        assert main([
            "timeline", "--app", "ep", "--nprocs", "4", "--width", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "rank   0 |" in out
        assert "rank   3 |" in out

    def test_timeline_with_source_file(self, tmp_path, capsys):
        src = tmp_path / "t.mm"
        src.write_text(
            "def main() { compute(flops = 1000000 * (rank + 1)); barrier(); }"
        )
        assert main([
            "timeline", "--source", str(src), "--nprocs", "3", "--width", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "w" in out  # early ranks wait at the barrier

    def test_timeline_wait_summary(self, capsys):
        assert main([
            "timeline", "--app", "ep", "--nprocs", "4", "--width", "60",
            "--wait-summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "per-rank time split" in out
        assert "(wait" in out


class TestJsonNanSafety:
    """The --json surface must always emit strictly parseable JSON, even
    when ground truth carries NaN sentinels (PR-2 satellite fix)."""

    #: rank 0's irecv matches rank 1's send but is never waited on, so the
    #: matched P2PRecord keeps completion = NaN through the whole pipeline.
    UNWAITED_IRECV = """\
def main() {
    for (var i = 0; i < 12; i = i + 1) {
        compute(flops = 1000000 / nprocs);
        if (rank == 0) {
            irecv(src = 1, tag = 9, req = r);
        }
        if (rank == 1) {
            send(dest = 0, tag = 9, bytes = 64);
        }
        allreduce(bytes = 8);
    }
}
"""

    def test_cli_json_round_trip_with_nan_ground_truth(self, tmp_path, capsys):
        src = tmp_path / "unwaited.mm"
        src.write_text(self.UNWAITED_IRECV)
        assert main([
            "run", "--source", str(src), "--scales", "2,4,8", "--json",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # must be strictly valid JSON
        assert doc["format"] == "scalana-report-v1"
        assert "NaN" not in out and "Infinity" not in out

        def no_nan(obj):
            if isinstance(obj, float):
                assert math.isfinite(obj)
            elif isinstance(obj, dict):
                for v in obj.values():
                    no_nan(v)
            elif isinstance(obj, list):
                for v in obj:
                    no_nan(v)

        no_nan(doc)

    def test_report_with_nan_serializes_as_null(self):
        from repro.detection.report import DetectionReport
        from repro.tools.export import report_to_json

        report = DetectionReport(
            nprocs=4, scales=(4, 8), detection_seconds=float("nan")
        )
        text = report_to_json(report)
        doc = json.loads(text)
        assert doc["detection_seconds"] is None

    def test_sanitize_json_floats(self):
        from repro.tools.export import sanitize_json_floats

        doc = {
            "a": float("nan"),
            "b": [1.0, float("inf"), {"c": float("-inf")}],
            "d": "NaN",  # strings pass through untouched
            "e": 3,
        }
        clean = sanitize_json_floats(doc)
        assert clean == {"a": None, "b": [1.0, None, {"c": None}], "d": "NaN", "e": 3}

    def test_dump_json_rejects_nan(self, tmp_path):
        from repro.util.serialization import dump_json

        with pytest.raises(ValueError):
            dump_json({"bad": float("nan")}, tmp_path / "bad.json")
