"""Tests for the extended CLI commands (compare / export / timeline)."""

import pytest

from repro.tools.cli import main


class TestCompare:
    def test_compare_prints_three_tools(self, capsys):
        assert main(["compare", "--app", "ep", "--nprocs", "8"]) == 0
        out = capsys.readouterr().out
        assert "Scalasca-like tracer" in out
        assert "HPCToolkit-like profiler" in out
        assert "ScalAna" in out
        assert "wait-state classification" in out


class TestExport:
    def test_export_psg_only(self, tmp_path, capsys):
        out_dir = tmp_path / "graphs"
        assert main(["export", "--app", "cg", "--out", str(out_dir)]) == 0
        assert (out_dir / "psg.dot").exists()
        assert (out_dir / "psg.graphml").exists()
        dot = (out_dir / "psg.dot").read_text()
        assert dot.startswith("digraph PSG")

    def test_export_with_ppg(self, tmp_path):
        out_dir = tmp_path / "graphs"
        assert main([
            "export", "--app", "ep", "--out", str(out_dir), "--nprocs", "4",
        ]) == 0
        assert (out_dir / "ppg_p4.dot").exists()


class TestTimeline:
    def test_timeline_renders(self, capsys):
        assert main([
            "timeline", "--app", "ep", "--nprocs", "4", "--width", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "rank   0 |" in out
        assert "rank   3 |" in out

    def test_timeline_with_source_file(self, tmp_path, capsys):
        src = tmp_path / "t.mm"
        src.write_text(
            "def main() { compute(flops = 1000000 * (rank + 1)); barrier(); }"
        )
        assert main([
            "timeline", "--source", str(src), "--nprocs", "3", "--width", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "w" in out  # early ranks wait at the barrier
