"""Engine semantics tests: time, waiting, non-blocking, collectives."""

import math

import pytest

from repro.minilang.ast_nodes import MpiOp
from repro.simulator import DeadlockError, SegmentKind
from repro.simulator.collectives import CollectiveMismatchError
from tests.conftest import run_source


class TestComputeTiming:
    def test_single_rank_compute_time(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 2000000000); }", nprocs=1
        )
        # default flop rate 2e9 -> exactly 1 second
        assert res.total_time == pytest.approx(1.0)

    def test_compute_counters_aggregated(self):
        res, psg, _ = run_source(
            "def main() { compute(flops = 1000, bytes = 800); "
            "compute(flops = 1000, bytes = 800); }", nprocs=1
        )
        (key,) = [k for k in res.vertex_counters if k[0] == 0]
        # the two computes merged into one Comp vertex by contraction
        assert res.vertex_counters[key].tot_lst_ins == pytest.approx(200)
        assert res.vertex_visits[key] == 2

    def test_finish_times_per_rank(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 1000000 * (rank + 1)); }", nprocs=4
        )
        assert res.finish_times == sorted(res.finish_times)
        assert res.total_time == res.finish_times[3]


class TestBlockingP2P:
    def test_receiver_waits_for_sender(self):
        src = """def main() {
            if (rank == 0) {
                compute(flops = 2000000000);
                send(dest = 1, tag = 1, bytes = 8);
            } else {
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        (rec,) = res.p2p_records
        assert rec.wait_time == pytest.approx(1.0, rel=1e-3)
        assert rec.had_wait
        assert res.finish_times[1] >= 1.0

    def test_sender_does_not_block(self):
        src = """def main() {
            if (rank == 0) {
                send(dest = 1, tag = 1, bytes = 8);
            } else {
                compute(flops = 2000000000);
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        assert res.finish_times[0] < 0.01  # eager send returns immediately
        (rec,) = res.p2p_records
        assert rec.wait_time == 0.0

    def test_transfer_time_respected(self):
        src = """def main() {
            if (rank == 0) {
                send(dest = 1, tag = 1, bytes = 600000000);
            } else {
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        # 6e8 bytes / 6e9 B/s = 0.1 s on the wire
        assert res.finish_times[1] == pytest.approx(0.1, rel=1e-2)

    def test_message_order_fifo(self):
        src = """def main() {
            if (rank == 0) {
                send(dest = 1, tag = 1, bytes = 8);
                send(dest = 1, tag = 1, bytes = 16);
            } else {
                recv(src = 0, tag = 1);
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        sizes = [r.nbytes for r in sorted(res.p2p_records, key=lambda r: r.completion)]
        assert sizes == [8, 16]

    def test_any_source_recv_records_true_source(self):
        src = """def main() {
            if (rank == 0) {
                recv(src = ANY, tag = ANY);
                recv(src = ANY, tag = ANY);
            } else {
                send(dest = 0, tag = rank, bytes = 8);
            }
        }"""
        res, _, _ = run_source(src, nprocs=3)
        srcs = {r.send_rank for r in res.p2p_records}
        assert srcs == {1, 2}
        for r in res.p2p_records:
            assert r.declared_src is None  # wildcard recorded as such
            assert r.tag == r.send_rank


class TestNonBlocking:
    def test_irecv_wait_attributes_wait_to_wait_vertex(self):
        src = """def main() {
            if (rank == 0) {
                compute(flops = 1000000000);
                send(dest = 1, tag = 1, bytes = 8);
            } else {
                irecv(src = 0, tag = 1, req = r1);
                wait(req = r1);
            }
        }"""
        res, psg, _ = run_source(src, nprocs=2)
        (rec,) = res.p2p_records
        assert rec.wait_vid != rec.recv_vid
        assert rec.wait_time == pytest.approx(0.5, rel=1e-2)
        wait_v = psg.vertices[rec.wait_vid]
        assert wait_v.mpi_op is MpiOp.WAIT

    def test_waitall_collects_all_requests(self):
        src = """def main() {
            var right = (rank + 1) % nprocs;
            var left = (rank - 1 + nprocs) % nprocs;
            isend(dest = right, tag = 1, bytes = 64, req = s1);
            isend(dest = left, tag = 2, bytes = 64, req = s2);
            irecv(src = left, tag = 1, req = r1);
            irecv(src = right, tag = 2, req = r2);
            waitall();
        }"""
        res, _, _ = run_source(src, nprocs=4)
        assert len(res.p2p_records) == 8
        assert all(not math.isnan(r.completion) for r in res.p2p_records)
        # all four requests completed at the same waitall vertex
        assert len({r.wait_vid for r in res.p2p_records}) == 1

    def test_wait_on_send_request_is_fast(self):
        src = """def main() {
            if (rank == 0) {
                isend(dest = 1, tag = 1, bytes = 8, req = s);
                wait(req = s);
            } else {
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        assert res.finish_times[0] < 0.001

    def test_wait_unknown_request_raises(self):
        from repro.simulator.errors import MpiUsageError

        with pytest.raises(MpiUsageError, match="unknown request"):
            run_source("def main() { wait(req = ghost); }", nprocs=1)

    def test_out_of_order_tags_match_correctly(self):
        src = """def main() {
            if (rank == 0) {
                send(dest = 1, tag = 2, bytes = 200);
                send(dest = 1, tag = 1, bytes = 100);
            } else {
                recv(src = 0, tag = 1);
                recv(src = 0, tag = 2);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        by_tag = {r.tag: r.nbytes for r in res.p2p_records}
        assert by_tag == {1: 100, 2: 200}


class TestCollectives:
    def test_barrier_synchronizes(self):
        src = """def main() {
            compute(flops = 1000000 * (rank + 1));
            barrier();
            compute(flops = 1);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        (coll,) = res.collective_records
        assert coll.mpi_op is MpiOp.BARRIER
        finish = max(coll.completions.values())
        assert all(
            c == pytest.approx(finish) for c in coll.completions.values()
        )
        assert coll.last_arrival_rank == 3

    def test_allreduce_wait_attribution(self):
        src = """def main() {
            if (rank == 2) { compute(flops = 2000000000); }
            allreduce(bytes = 8);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        (coll,) = res.collective_records
        assert coll.wait_of(2) == pytest.approx(0.0, abs=1e-6)
        for r in (0, 1, 3):
            assert coll.wait_of(r) == pytest.approx(1.0, rel=1e-3)

    def test_bcast_root_gates_others(self):
        src = """def main() {
            if (rank == 0) { compute(flops = 2000000000); }
            bcast(root = 0, bytes = 1024);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        (coll,) = res.collective_records
        for r in range(1, 4):
            assert coll.completions[r] >= 1.0

    def test_reduce_nonroot_does_not_wait(self):
        src = """def main() {
            if (rank == 0) { compute(flops = 2000000000); }
            reduce(root = 0, bytes = 8);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        (coll,) = res.collective_records
        assert coll.completions[1] < 0.01  # fire-and-forget contribution
        assert coll.completions[0] >= 1.0

    def test_collective_mismatch_detected(self):
        src = """def main() {
            if (rank == 0) { barrier(); } else { allreduce(bytes = 8); }
        }"""
        with pytest.raises(CollectiveMismatchError):
            run_source(src, nprocs=2)

    def test_consecutive_collectives_instance_order(self):
        src = """def main() {
            barrier();
            allreduce(bytes = 8);
            barrier();
        }"""
        res, _, _ = run_source(src, nprocs=3)
        ops_seen = [c.mpi_op for c in sorted(res.collective_records, key=lambda c: c.index)]
        assert ops_seen == [MpiOp.BARRIER, MpiOp.ALLREDUCE, MpiOp.BARRIER]


class TestDeadlock:
    def test_recv_without_send_deadlocks(self):
        with pytest.raises(DeadlockError) as exc:
            run_source("def main() { recv(src = (rank + 1) % nprocs, tag = 1); }", nprocs=2)
        assert "blocked" in str(exc.value)
        assert "recv" in str(exc.value)

    def test_collective_partial_arrival_deadlocks(self):
        src = """def main() {
            if (rank == 0) { barrier(); }
        }"""
        with pytest.raises(DeadlockError) as exc:
            run_source(src, nprocs=2)
        assert "MPI_Barrier" in str(exc.value)

    def test_wait_never_matched_deadlocks(self):
        src = """def main() {
            if (rank == 0) { irecv(src = 1, tag = 1, req = r); wait(req = r); }
        }"""
        with pytest.raises(DeadlockError):
            run_source(src, nprocs=2)

    def test_tag_mismatch_deadlocks(self):
        src = """def main() {
            if (rank == 0) { send(dest = 1, tag = 1, bytes = 8); }
            else { recv(src = 0, tag = 2); }
        }"""
        with pytest.raises(DeadlockError):
            run_source(src, nprocs=2)


class TestBlockDiagnostics:
    """Direct coverage of _describe_block for every block kind: the
    deadlock stack-dump must say what each rank is stuck *on*."""

    @staticmethod
    def _diagnostics(src, nprocs, **cfg):
        with pytest.raises(DeadlockError) as exc:
            run_source(src, nprocs=nprocs, **cfg)
        return exc.value.blocked

    def test_recv_names_source_and_tag(self):
        blocked = self._diagnostics(
            "def main() { if (rank == 0) { recv(src = 1, tag = 5); } }",
            nprocs=2,
        )
        assert len(blocked) == 1
        assert "rank 0 blocked" in blocked[0]
        assert "recv(src=1, tag=5)" in blocked[0]

    def test_wildcard_recv_names_any(self):
        blocked = self._diagnostics(
            "def main() { if (rank == 0) { recv(src = ANY, tag = ANY); } }",
            nprocs=2,
        )
        assert "recv(src=ANY, tag=ANY)" in blocked[0]

    def test_wait_names_request(self):
        blocked = self._diagnostics(
            "def main() { if (rank == 0) {"
            " irecv(src = 1, tag = 1, req = r); wait(req = r); } }",
            nprocs=2,
        )
        assert "wait(req=r)" in blocked[0]

    def test_waitall_reports_only_incomplete_requests_by_name(self):
        # Three captured requests; the isend completes locally and one
        # irecv is matched by rank 1's send, so exactly one is incomplete
        # at the deadlock — the diagnostic must name it (and only it).
        src = """def main() {
            if (rank == 0) {
                isend(dest = 1, tag = 1, bytes = 8, req = s);
                irecv(src = 1, tag = 1, req = a);
                irecv(src = 1, tag = 2, req = b);
                waitall();
            } else {
                recv(src = 0, tag = 1);
                send(dest = 0, tag = 1, bytes = 8);
            }
        }"""
        blocked = self._diagnostics(src, nprocs=2)
        assert len(blocked) == 1
        assert "waitall(1 incomplete: req=b)" in blocked[0]
        assert "req=a" not in blocked[0]
        assert "req=s" not in blocked[0]

    def test_waitall_names_every_incomplete_request(self):
        src = """def main() {
            if (rank == 0) {
                irecv(src = 1, tag = 1, req = a);
                irecv(src = 1, tag = 2, req = b);
                waitall();
            } else { compute(flops = 1000); }
        }"""
        blocked = self._diagnostics(src, nprocs=2)
        assert "waitall(2 incomplete: req=a, b)" in blocked[0]

    def test_collective_names_op_and_arrival_count(self):
        blocked = self._diagnostics(
            "def main() { if (rank == 0) { barrier(); } }", nprocs=3
        )
        assert len(blocked) == 1
        assert "MPI_Barrier #0 (1/3 arrived)" in blocked[0]

    def test_sharded_collective_block_names_op(self):
        blocked = self._diagnostics(
            "def main() { if (rank < 2) { allreduce(bytes = 8); } }",
            nprocs=4, sim_shards=2, sim_executor="inprocess",
        )
        assert any("MPI_Allreduce #0" in line for line in blocked)


class TestSegments:
    def test_segments_cover_rank_time(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 1000000); allreduce(bytes = 8); }",
            nprocs=4,
        )
        for rank in range(4):
            segs = [s for s in res.segments if s.rank == rank]
            covered = sum(s.duration for s in segs)
            assert covered == pytest.approx(res.finish_times[rank], rel=1e-9)

    def test_segments_per_rank_nonoverlapping(self):
        res, _, _ = run_source(
            "def main() { for (var i = 0; i < 5; i = i + 1) {"
            " compute(flops = 100000); sendrecv(dest = (rank + 1) % nprocs,"
            " tag = 1, bytes = 64, src = (rank - 1 + nprocs) % nprocs); } }",
            nprocs=4,
        )
        for rank in range(4):
            segs = sorted(
                (s for s in res.segments if s.rank == rank), key=lambda s: s.start
            )
            for a, b in zip(segs, segs[1:]):
                assert a.end <= b.start + 1e-12

    def test_record_segments_off(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 1000); }", nprocs=2,
            record_segments=False,
        )
        assert res.segments == []
        assert res.vertex_time  # aggregates still maintained

    def test_kind_classification(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 1000); barrier(); }", nprocs=2
        )
        kinds = {s.kind for s in res.segments}
        assert kinds == {SegmentKind.COMPUTE, SegmentKind.MPI}


class TestWaitAccounting:
    """Regression tests for the PR-2 wait-accounting bug fixes."""

    def test_wait_on_send_request_charges_send_overhead(self):
        """MPI_Wait on an isend must complete with *send-side* overhead.

        The engine used to charge ``recv_overhead()`` here.  The wait
        vertex's exact time is pinned to the network call overhead so any
        future drift in which cost is charged fails loudly.
        """
        src = """def main() {
            if (rank == 0) {
                isend(dest = 1, tag = 1, bytes = 8, req = s);
                wait(req = s);
            } else {
                recv(src = 0, tag = 1);
            }
        }"""
        res, psg, _ = run_source(src, nprocs=2)
        overhead = res.config.network.call_overhead
        wait_vids = [
            v.vid for v in psg.vertices.values() if v.mpi_op is MpiOp.WAIT
        ]
        (wait_vid,) = wait_vids
        assert res.vertex_time[(0, wait_vid)] == pytest.approx(overhead)
        # rank 0's timeline: isend overhead + wait overhead, nothing else
        assert res.finish_times[0] == pytest.approx(2 * overhead)

    def test_irecv_matched_but_never_waited_leaves_nan_completion(self):
        """An irecv that matches but is never waited on has no completion
        time; the sentinel is NaN in-memory (exports sanitize it)."""
        src = """def main() {
            if (rank == 0) {
                irecv(src = 1, tag = 1, req = r);
                compute(flops = 1000000);
            } else {
                send(dest = 0, tag = 1, bytes = 8);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        (rec,) = res.p2p_records
        assert math.isnan(rec.completion)
        assert rec.wait_time == 0.0

    def test_anti_churn_peeks_past_stale_heap_entries(self):
        """A stale heap top (superseded token) must not re-park the
        running proc; and peeking past stale entries must not change any
        observable result.  Exercised with a pattern that generates heavy
        wake/re-push churn, asserted by exact agreement of two runs and by
        segment coverage."""
        src = """def main() {
            for (var i = 0; i < 6; i = i + 1) {
                if (rank % 2 == 0) {
                    compute(flops = 100000 * (rank + i + 1));
                    send(dest = (rank + 1) % nprocs, tag = i, bytes = 64);
                } else {
                    recv(src = (rank - 1 + nprocs) % nprocs, tag = i);
                    compute(flops = 50000);
                }
                allreduce(bytes = 8);
            }
        }"""
        r1, _, _ = run_source(src, nprocs=6)
        r2, _, _ = run_source(src, nprocs=6)
        assert r1.finish_times == r2.finish_times
        assert [s.end for s in r1.segments] == [s.end for s in r2.segments]
        for rank in range(6):
            covered = sum(s.duration for s in r1.segments if s.rank == rank)
            assert covered == pytest.approx(r1.finish_times[rank], rel=1e-9)


class TestDeterminism:
    def test_same_seed_identical(self):
        src = """def main() {
            for (var i = 0; i < 10; i = i + 1) {
                compute(flops = 1000000 * hashrand(rank, i) + 1000);
                isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 512, req = s);
                irecv(src = ANY, tag = 1, req = r);
                waitall();
                allreduce(bytes = 8);
            }
        }"""
        r1, _, _ = run_source(src, nprocs=8, seed=5)
        r2, _, _ = run_source(src, nprocs=8, seed=5)
        assert r1.finish_times == r2.finish_times
        assert len(r1.p2p_records) == len(r2.p2p_records)
        assert [s.end for s in r1.segments] == [s.end for s in r2.segments]

    def test_noise_seed_changes_times(self):
        from repro.simulator import MachineModel

        src = "def main() { compute(flops = 1000000); }"
        r1, _, _ = run_source(src, nprocs=2, seed=1,
                              machine=MachineModel(noise_sigma=0.1))
        r2, _, _ = run_source(src, nprocs=2, seed=2,
                              machine=MachineModel(noise_sigma=0.1))
        assert r1.total_time != r2.total_time
