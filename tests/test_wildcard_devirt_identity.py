"""Wildcard devirtualization bit-identity: devirt-on reproduces devirt-off.

The engine's ``sim_wildcard_devirt`` knob rewrites ANY-source receives the
match-order analysis proves deterministic into concrete-source receives at
compile time.  The rewrite is only allowed to change *how* matching runs
— never what any rank computes — so across ~100 randomized wildcard-heavy
workloads (serial and sharded, both executors, both schedulers) the
``run_fingerprint`` and the canonical detection report must be identical
on and off.  A second family of assertions checks the pass actually
*engages* (counters ``sim.wildcard.devirt`` / ``sim.wildcard.gate_skips``
and the class-batching refusal it lifts): identity with a pass that never
fires would prove nothing.
"""

import json
import random

import pytest

from repro.api import AnalysisConfig, Pipeline, run_fingerprint
from repro.api.config import canonical_json
from repro.minilang import parse_program
from repro.psg import build_psg
from repro.runtime import profile_run
from repro.simulator import SimulationConfig

# ----------------------------------------------------------------------
# randomized wildcard-heavy workload generator
# ----------------------------------------------------------------------

#: Content-derived stagger for racing senders: exactly-tied ANY-source
#: arrivals are MPI-ambiguous and sit outside the serial bit-identity
#: guarantee (see test_parallel_sim.TestWildcardTieCarveOut); everything
#: time-separated is inside it.
_STAGGER = "compute(flops = 20000 * rank + floor(20000 * hashrand(rank, it)));"


def _wild_ring(rng, tag):
    """The devirt centerpiece: every rank's ANY-source receive has a
    proven-unique matcher, so the whole loop devirtualizes."""
    return (
        f"        send(dest = (rank + 1) % nprocs, tag = {tag}, "
        f"bytes = {rng.choice([64, 1024])});\n"
        f"        recv(src = ANY, tag = {tag});\n"
        "        barrier();\n"
    )


def _wild_unique_pair(rng, tag):
    """One guarded sender, one guarded ANY receiver: unique feasible
    sender, devirtualizes even without symmetry."""
    return (
        "        if (rank == 0) {\n"
        f"            recv(src = ANY, tag = {tag});\n"
        "        }\n"
        "        if (rank == 1) {\n"
        f"            send(dest = 0, tag = {tag}, bytes = {rng.choice([8, 256])});\n"
        "        }\n"
    )


def _wild_irecv_unique(rng, tag):
    """Nonblocking ANY-source receive with a unique sender: devirtualized
    without epoch pruning (which only applies to blocking receives)."""
    return (
        "        if (rank == 0) {\n"
        f"            irecv(src = ANY, tag = {tag}, req = r);\n"
        "            wait(req = r);\n"
        "        }\n"
        "        if (rank == 1) {\n"
        f"            send(dest = 0, tag = {tag}, bytes = 128);\n"
        "        }\n"
    )


def _racy_fan_in(rng, tag):
    """A genuine (time-separated) race: must NOT devirtualize — identity
    then shows the pass leaves racy receives strictly alone."""
    return (
        "        if (rank == 0) {\n"
        "            for (var i = 1; i < nprocs; i = i + 1) {\n"
        f"                recv(src = ANY, tag = {tag});\n"
        "            }\n"
        "        } else {\n"
        f"            {_STAGGER}\n"
        f"            send(dest = 0, tag = {tag}, bytes = {rng.choice([8, 256])});\n"
        "        }\n"
    )


def _collectives(rng, tag):
    op = rng.choice(
        [
            "allreduce(bytes = 8);",
            "barrier();",
            f"bcast(root = {rng.randint(0, 2)}, bytes = 64);",
            "allgather(bytes = 16);",
        ]
    )
    return f"        {op}\n"


_PATTERNS = (
    _wild_ring, _wild_unique_pair, _wild_irecv_unique,
    _racy_fan_in, _collectives,
)


def make_wild_workload(seed: int) -> str:
    """One randomized wildcard-heavy MiniMPI program: every draw includes
    at least one devirtualizable pattern plus 0-2 others (racy fan-ins,
    collectives, imbalanced compute).  Each pattern instance gets its own
    tag: a tag shared across patterns would let their sends cross-match
    and manufacture *exactly-tied* ANY-source races — MPI-ambiguous by
    the engine's own carve-out, hence outside the identity guarantee this
    suite enforces."""
    rng = random.Random(seed)
    iters = rng.randint(2, 4)
    body = (
        f"        compute(flops = {rng.randint(4, 12)}0000 "
        f"+ 7000 * (rank % 3));\n"
    )
    tag = 1
    body += rng.choice((_wild_ring, _wild_unique_pair, _wild_irecv_unique))(
        rng, tag
    )
    for pattern in rng.sample(_PATTERNS, rng.randint(0, 2)):
        tag += 1
        body += pattern(rng, tag)
    return (
        "def main() {\n"
        f"    for (var it = 0; it < {iters}; it = it + 1) {{\n"
        + body
        + "    }\n"
        "}\n"
    )


def _compiled(source, name):
    program = parse_program(source, f"{name}.mm")
    return program, build_psg(program).psg


def _fingerprint(program, psg, nprocs, **cfg):
    run = profile_run(program, psg, SimulationConfig(nprocs=nprocs, **cfg))
    return run_fingerprint(run)


# ----------------------------------------------------------------------
# the identity sweep
# ----------------------------------------------------------------------


class TestDevirtIdentity:
    #: ~100 randomized wildcard-heavy workloads through the identity gate.
    SEEDS = range(100)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_devirt_on_matches_off_serial_and_sharded(self, seed):
        source = make_wild_workload(seed)
        rng = random.Random(20_000 + seed)
        nprocs = rng.randint(5, 9)
        program, psg = _compiled(source, f"wild{seed}")
        off = _fingerprint(program, psg, nprocs, sim_wildcard_devirt=False)
        on = _fingerprint(program, psg, nprocs)
        assert on == off, f"serial divergence on seed {seed}"
        shards = rng.randint(2, 4)
        for devirt in (True, False):
            sharded = _fingerprint(
                program, psg, nprocs,
                sim_wildcard_devirt=devirt,
                sim_shards=shards, sim_executor="inprocess",
            )
            assert sharded == off, f"sharded divergence seed {seed} devirt={devirt}"

    @pytest.mark.parametrize("seed", [2, 19, 44, 71, 93])
    def test_process_executor_and_both_schedulers(self, seed):
        """The multiprocess path ships the knob through worker configs;
        both schedulers must agree with the serial devirt-off oracle."""
        source = make_wild_workload(seed)
        program, psg = _compiled(source, f"wildmp{seed}")
        oracle = _fingerprint(program, psg, 6, sim_wildcard_devirt=False)
        for scheduler in ("heap", "calendar"):
            serial = _fingerprint(program, psg, 6, sim_scheduler=scheduler)
            assert serial == oracle, (seed, scheduler)
            sharded = _fingerprint(
                program, psg, 6,
                sim_scheduler=scheduler,
                sim_shards=2, sim_executor="process",
            )
            assert sharded == oracle, (seed, scheduler)


class TestDevirtEngages:
    """Bit-identity means nothing if the pass never fires."""

    RING = (
        "def main() {\n"
        "    for (var i = 0; i < 3; i = i + 1) {\n"
        "        send(dest = (rank + 1) % nprocs, tag = 7, bytes = 64);\n"
        "        recv(src = ANY, tag = 7);\n"
        "        barrier();\n"
        "    }\n"
        "}\n"
    )

    def _engine(self, nprocs, **cfg):
        from repro.simulator.engine import Engine

        program, psg = _compiled(self.RING, "engage")
        engine = Engine(program, psg, SimulationConfig(nprocs=nprocs, **cfg))
        engine.run()
        return engine

    def test_serial_devirt_counter(self):
        engine = self._engine(8)
        assert engine.wildcard_stats["devirt"] == 8 * 3
        assert engine.wildcard_stats["gate_skips"] == 0  # serial: no gates

    def test_knob_off_never_rewrites(self):
        engine = self._engine(8, sim_wildcard_devirt=False)
        assert engine.wildcard_stats == {"devirt": 0, "gate_skips": 0}

    def test_sweep_engages_across_seeds(self):
        """At least 90 of the 100 sweep seeds must devirtualize at least
        one receive — the generator guarantees a devirtualizable pattern
        per draw, so near-universal engagement is the expectation."""
        from repro.simulator.engine import Engine

        engaged = 0
        for seed in TestDevirtIdentity.SEEDS:
            program, psg = _compiled(make_wild_workload(seed), f"eng{seed}")
            engine = Engine(program, psg, SimulationConfig(nprocs=6))
            engine.run()
            if engine.wildcard_stats["devirt"] > 0:
                engaged += 1
        assert engaged >= 90, f"only {engaged}/100 seeds engaged the pass"

    def test_sharded_gate_skips_and_batching_lift(self):
        """Sharded runs skip the ANY-source gate for devirtualized
        receives, and class batching accepts the rewritten stream it
        refused as a wildcard."""
        import repro.simulator.parallel.coordinator as coordinator
        from repro.simulator.parallel.plan import ShardPlan
        from repro.simulator.parallel.shard import ShardEngine

        program, psg = _compiled(self.RING, "gates")
        results = {}
        for devirt in (True, False):
            cfg = SimulationConfig(
                nprocs=8, sim_shards=3, sim_executor="inprocess",
                sim_wildcard_devirt=devirt,
            )
            plan = ShardPlan.contiguous(8, 3)
            engines = [
                ShardEngine(program, psg, cfg, plan, s) for s in range(3)
            ]
            handles = [coordinator.LocalShardHandle(e) for e in engines]
            coordinator.run_coordinated(
                handles, plan, cfg, executor="inprocess"
            )
            results[devirt] = {
                "devirt": sum(e.wildcard_stats["devirt"] for e in engines),
                "gate_skips": sum(
                    e.wildcard_stats["gate_skips"] for e in engines
                ),
                "fallbacks": sum(
                    e.class_batch_stats["fallbacks"] for e in engines
                ),
                "batched": sum(
                    e.class_batch_stats["ranks_batched"] for e in engines
                ),
            }
        on, off = results[True], results[False]
        assert on["devirt"] == 8 * 3 and on["gate_skips"] == 8 * 3
        assert off["devirt"] == 0 and off["gate_skips"] == 0
        # the PR 9 refusal is lifted: wildcard phase batches under devirt
        assert off["fallbacks"] > 0 and off["batched"] == 0
        assert on["fallbacks"] == 0 and on["batched"] == 8

    def test_metrics_registry_counters(self):
        from repro import obs

        engine = self._engine(8)
        reg = obs.MetricsRegistry()
        engine.fill_metrics(reg)
        snap = reg.snapshot()
        doc = snap.to_json_dict()
        assert doc["counters"]["sim.wildcard.devirt"] == 24
        assert doc["counters"]["sim.wildcard.gate_skips"] == 0


class TestDigestNeutrality:
    def test_knob_is_digest_neutral(self):
        base = AnalysisConfig(seed=0)
        off = AnalysisConfig(seed=0, sim_wildcard_devirt=False)
        assert base.digest() == off.digest()
        assert AnalysisConfig.from_json(off.to_json()) == off
        # pre-devirt documents load with the default (on)
        doc = json.loads(base.to_json())
        assert "sim_wildcard_devirt" not in doc  # non-default-only key
        assert AnalysisConfig.from_dict(doc).sim_wildcard_devirt is True
        with pytest.raises(ValueError):
            AnalysisConfig(sim_wildcard_devirt="yes")
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=2, sim_wildcard_devirt="yes")

    def test_canonical_report_sha_identical(self):
        reports = {}
        for devirt in (True, False):
            pipeline = Pipeline(
                source=make_wild_workload(7), filename="wild.mm",
                config=AnalysisConfig(seed=0, sim_wildcard_devirt=devirt),
            )
            doc = pipeline.run([4, 8]).report.to_json_dict()
            doc["detection_seconds"] = 0.0
            reports[devirt] = canonical_json(doc)
        assert reports[True] == reports[False]


class TestCLI:
    def test_no_wildcard_devirt_flag_is_bit_identical(self, tmp_path, capsys):
        from repro.tools.cli import main

        source = tmp_path / "wild.mm"
        source.write_text(make_wild_workload(11))
        outs = {}
        for flag in ((), ("--no-wildcard-devirt",)):
            assert main([
                "run", "--source", str(source), "--scales", "4,8", "--json",
                *flag,
            ]) == 0
            doc = json.loads(capsys.readouterr().out)
            doc["detection_seconds"] = 0.0
            outs[flag] = doc
        assert outs[()] == outs[("--no-wildcard-devirt",)]
