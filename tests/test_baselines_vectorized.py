"""Vectorized baseline analyses vs the per-record walks, kept as oracles.

Mirrors ``tests/test_comm_tables.py``'s contract: the historical
object-walking implementations of Scalasca-style wait-state classification
and the tracer's backward-replay analysis are kept here verbatim, and the
column-reading implementations (which fixed the O(P²)-per-collective
``wait_of`` laggard loops) must reproduce them bit for bit — values *and*
order — over randomized workloads, serial and sharded.
"""

from collections import defaultdict

import pytest

from repro.baselines import TracerTool, classify_wait_states
from repro.baselines.tracer import TraceAnalysis
from repro.baselines.waitstates import _COLLECTIVE_KIND, WaitState, WaitStateKind
from repro.minilang import parse_program
from repro.psg import build_psg
from repro.simulator import SimulationConfig, simulate
from repro.simulator.events import SegmentKind
from tests.conftest import IMBALANCED_SOURCE
from tests.test_scheduler_identity import make_workload


def _run(source, nprocs, **cfg):
    program = parse_program(source, "vec.mm")
    psg = build_psg(program).psg
    return program, psg, simulate(
        program, psg, SimulationConfig(nprocs=nprocs, **cfg)
    )


# ----------------------------------------------------------------------
# reference implementations (pre-vectorization, object-walking), verbatim
# ----------------------------------------------------------------------


def reference_classify(result):
    """The historical per-record loop (wait_of recomputed the op-cost min
    per call, making the laggard loop O(P²) per collective)."""
    states = []
    for rec in result.p2p_records:
        if rec.wait_time <= 0.0:
            continue
        if rec.send_time > rec.recv_post:
            kind = WaitStateKind.LATE_SENDER
            late = min(rec.wait_time, rec.send_time - rec.recv_post)
            states.append(
                WaitState(kind, rec.recv_rank, rec.wait_vid, late, rec.send_rank)
            )
            rest = rec.wait_time - late
            if rest > 0:
                states.append(
                    WaitState(
                        WaitStateKind.TRANSFER, rec.recv_rank, rec.wait_vid, rest
                    )
                )
        else:
            states.append(
                WaitState(
                    WaitStateKind.TRANSFER,
                    rec.recv_rank,
                    rec.wait_vid,
                    rec.wait_time,
                )
            )
    for crec in result.collective_records:
        kind = _COLLECTIVE_KIND[crec.mpi_op]
        laggard = crec.last_arrival_rank
        for rank in crec.arrivals:
            op_cost = min(
                crec.completions[r] - crec.arrivals[r] for r in crec.arrivals
            )
            w = max(
                0.0, (crec.completions[rank] - crec.arrivals[rank]) - op_cost
            )
            if w <= 0.0 or rank == laggard:
                continue
            states.append(WaitState(kind, rank, crec.vids[rank], w, laggard))
    return states


def reference_analyze(result) -> TraceAnalysis:
    """The historical per-record Bohme-style backward replay."""
    analysis = TraceAnalysis()
    compute_by_rank: dict[int, list] = defaultdict(list)
    for seg in result.segments:
        if seg.kind is SegmentKind.COMPUTE:
            compute_by_rank[seg.rank].append(seg)
    for segs in compute_by_rank.values():
        segs.sort(key=lambda s: s.start)

    def cause_at(rank: int, t: float) -> int | None:
        segs = compute_by_rank.get(rank)
        if not segs:
            return None
        lo, hi = 0, len(segs)
        while lo < hi:
            mid = (lo + hi) // 2
            if segs[mid].start <= t:
                lo = mid + 1
            else:
                hi = mid
        idx = lo - 1
        if idx < 0:
            return None
        return segs[idx].vid

    for rec in result.p2p_records:
        if rec.wait_time <= 0:
            continue
        wvid = rec.wait_vid
        analysis.wait_by_vertex[wvid] = (
            analysis.wait_by_vertex.get(wvid, 0.0) + rec.wait_time
        )
        cause = cause_at(rec.send_rank, rec.send_time)
        if cause is not None:
            causes = analysis.wait_causes.setdefault(wvid, {})
            causes[cause] = causes.get(cause, 0.0) + rec.wait_time
    for crec in result.collective_records:
        laggard = crec.last_arrival_rank
        for rank in crec.arrivals:
            w = crec.wait_of(rank)
            if w <= 0:
                continue
            vid = crec.vids[rank]
            analysis.wait_by_vertex[vid] = (
                analysis.wait_by_vertex.get(vid, 0.0) + w
            )
            cause = cause_at(laggard, crec.arrivals[laggard])
            if cause is not None:
                causes = analysis.wait_causes.setdefault(vid, {})
                causes[cause] = causes.get(cause, 0.0) + w
    return analysis


def assert_analysis_identical(got: TraceAnalysis, want: TraceAnalysis):
    """Bit-identity including dict insertion order."""
    assert list(got.wait_by_vertex) == list(want.wait_by_vertex)
    assert repr(got.wait_by_vertex) == repr(want.wait_by_vertex)
    assert list(got.wait_causes) == list(want.wait_causes)
    assert repr(got.wait_causes) == repr(want.wait_causes)


WORKLOAD_SEEDS = list(range(0, 40, 2))


class TestClassifyWaitStates:
    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    def test_matches_reference_on_randomized_workloads(self, seed):
        _, _, result = _run(make_workload(seed), nprocs=7)
        assert classify_wait_states(result).states == reference_classify(result)

    def test_matches_reference_sharded(self):
        for shards in (1, 3):
            _, _, result = _run(
                IMBALANCED_SOURCE, nprocs=9,
                sim_shards=shards, sim_executor="inprocess",
            )
            got = classify_wait_states(result).states
            assert got == reference_classify(result)
            assert got, "workload must actually produce wait states"

    def test_empty_run_has_no_states(self):
        _, _, result = _run("def main() { compute(flops = 1000); }", nprocs=2)
        assert classify_wait_states(result).states == []


class TestTracerAnalyze:
    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS[:10])
    def test_matches_reference_on_randomized_workloads(self, seed):
        program, psg, _ = _run(make_workload(seed), nprocs=6)
        tool = TracerTool()
        run = tool.run(program, psg, SimulationConfig(nprocs=6))
        assert_analysis_identical(
            tool.analyze(run), reference_analyze(run.result)
        )

    def test_collective_causes_attributed(self):
        program, psg, _ = _run(IMBALANCED_SOURCE, nprocs=8)
        tool = TracerTool()
        run = tool.run(program, psg, SimulationConfig(nprocs=8))
        analysis = tool.analyze(run)
        assert_analysis_identical(analysis, reference_analyze(run.result))
        assert analysis.wait_by_vertex, "expected waiting vertices"
        assert analysis.wait_causes, "expected attributed causes"


class TestWaitOfCaching:
    def test_wait_of_values_unchanged_and_cached(self):
        _, _, result = _run(IMBALANCED_SOURCE, nprocs=6)
        for crec in result.collective_records:
            expected_cost = min(
                crec.completions[r] - crec.arrivals[r] for r in crec.arrivals
            )
            assert crec.cached_op_cost is None
            waits = [crec.wait_of(r) for r in crec.arrivals]
            assert crec.cached_op_cost == expected_cost
            assert waits == [
                max(
                    0.0,
                    (crec.completions[r] - crec.arrivals[r]) - expected_cost,
                )
                for r in crec.arrivals
            ]

    def test_cache_state_does_not_affect_equality(self):
        _, _, result = _run(IMBALANCED_SOURCE, nprocs=6)
        a = result.collective_records[0]
        b = result.collective_records[0]  # fresh view materialization
        a.wait_of(next(iter(a.arrivals)))
        assert a.cached_op_cost is not None and b.cached_op_cost is None
        assert a == b

    def test_wait_columns_match_record_walk(self):
        _, _, result = _run(IMBALANCED_SOURCE, nprocs=7)
        table = result.trace.collectives
        wc = table.wait_columns()
        flat = 0
        for i, crec in enumerate(table.records()):
            assert wc["op_cost"][i] == min(
                crec.completions[r] - crec.arrivals[r] for r in crec.arrivals
            )
            assert int(wc["laggard"][i]) == crec.last_arrival_rank
            assert (
                wc["laggard_arrival"][i]
                == crec.arrivals[crec.last_arrival_rank]
            )
            for rank in crec.arrivals:
                assert int(wc["row"][flat]) == i
                assert wc["wait"][flat] == crec.wait_of(rank)
                flat += 1
        assert flat == len(wc["wait"])

    def test_wait_columns_empty_table(self):
        _, _, result = _run("def main() { compute(flops = 10); }", nprocs=2)
        wc = result.trace.collectives.wait_columns()
        assert all(len(v) == 0 for v in wc.values())
