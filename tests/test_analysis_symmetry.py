"""Behavioral rank partition: structure tests plus the soundness property.

The load-bearing guarantee (ISSUE 6): for every class the analysis
reports, all member ranks execute the identical ``(op type, vid)``
sequence — verified against the per-rank interpreter as ground-truth
oracle over ~100 randomized workloads (the same generator the scheduler
and sharding identity gates use).
"""

import random

import pytest

from repro.analysis import analyze_program, partition_ranks
from repro.minilang import parse_program
from repro.psg import build_psg
from repro.simulator import ops as opmod
from repro.simulator.interp import Interpreter
from tests.test_scheduler_identity import make_workload


def _partition(source, nprocs, params=None):
    program = parse_program(source, "t.mm")
    build_psg(program)
    return partition_ranks(program, nprocs, params)


def _op_skeletons(program, psg, nprocs):
    """Ground truth: each rank's (op type, vid) sequence, fully executed."""
    cache: dict = {}
    skels = {}
    for rank in range(nprocs):
        skels[rank] = tuple(
            (type(op).__name__, op.vid)
            for op in Interpreter(
                program, psg, rank, nprocs, expr_cache=cache
            ).run()
            if not isinstance(op, opmod.IndirectCallNote)
        )
    return skels


class TestPartitionStructure:
    def test_fully_symmetric_program_collapses_to_one_class(self):
        sym = _partition(
            """
            def main() {
                sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 64,
                         src = (rank - 1 + nprocs) % nprocs);
                allreduce(bytes = 8);
            }
            """,
            8,
        )
        assert sym.degraded is None
        assert sym.n_classes == 1
        assert sym.classes[0].ranks == tuple(range(8))
        assert sym.is_collapsed

    def test_root_split(self):
        sym = _partition(
            """
            def main() {
                if (rank == 0) {
                    for (var i = 1; i < nprocs; i = i + 1) {
                        recv(src = i, tag = 1);
                    }
                } else {
                    send(dest = 0, tag = 1, bytes = 8);
                }
            }
            """,
            8,
        )
        assert sym.degraded is None
        assert [c.ranks for c in sym.classes] == [(0,), tuple(range(1, 8))]
        assert sym.representatives == (0, 1)
        assert sym.class_of_rank(5) is sym.classes[1]

    def test_parity_split(self):
        sym = _partition(
            """
            def main() {
                if (rank % 2 == 0) {
                    allreduce(bytes = 8);
                } else {
                    allreduce(bytes = 8);
                }
            }
            """,
            6,
        )
        assert [c.ranks for c in sym.classes] == [(0, 2, 4), (1, 3, 5)]

    def test_degraded_partition_is_singletons(self):
        sym = _partition(
            """
            def main() {
                var s = rank;
                while (s > 0) {
                    allreduce(bytes = 8);
                    s = s - 1;
                }
            }
            """,
            5,
        )
        assert sym.degraded is not None
        assert sym.n_classes == 5
        assert all(c.size == 1 for c in sym.classes)
        assert not sym.is_collapsed

    def test_precomputed_analysis_is_reused(self):
        program = parse_program(
            "def main() { allreduce(bytes = 8); }", "t.mm"
        )
        analysis = analyze_program(program, 4)
        sym = partition_ranks(program, 4, analysis=analysis)
        assert sym.analysis is analysis

    def test_apps_partition_without_degrading(self):
        from repro.apps import APPS, get_app

        for name in APPS:
            app = get_app(name)
            nprocs = next(n for n in (8, 9, 16) if app.nprocs_valid(n))
            sym = partition_ranks(app.program, nprocs, app.params)
            assert sym.degraded is None, (name, sym.degraded)
            assert sym.n_classes <= nprocs


class TestSoundnessProperty:
    """Classes must never merge ranks with different op skeletons."""

    @pytest.mark.parametrize("seed", range(100))
    def test_classes_match_interpreter_oracle(self, seed):
        source = make_workload(seed)
        rng = random.Random(10_000 + seed)
        nprocs = rng.randint(5, 9)
        program = parse_program(source, f"rand{seed}.mm")
        psg = build_psg(program).psg
        sym = partition_ranks(program, nprocs)
        if sym.degraded is not None:
            return  # singletons are vacuously sound
        skels = _op_skeletons(program, psg, nprocs)
        for cls in sym.classes:
            ref = skels[cls.representative]
            for rank in cls.ranks:
                assert skels[rank] == ref, (
                    f"seed {seed}: rank {rank} diverges from class "
                    f"{cls.ranks} representative"
                )

    def test_most_workloads_actually_collapse(self):
        """Meta-check: the generator produces workloads where symmetry is
        detectable, so the property test is not vacuous."""
        collapsed = 0
        for seed in range(100):
            rng = random.Random(10_000 + seed)
            nprocs = rng.randint(5, 9)
            program = parse_program(make_workload(seed), f"rand{seed}.mm")
            sym = partition_ranks(program, nprocs)
            if sym.is_collapsed:
                collapsed += 1
        assert collapsed >= 50
