"""The pluggable event queue: exact-order contract of every scheduler.

Both implementations must serve entries in the identical full-tuple
lexicographic order — the property the engine's bit-identity rests on —
including under lazy staleness pruning, horizons, decreasing pushes
(cross-window wake-ups) and calendar resizes.
"""

import random

import pytest

from repro.simulator.schedq import (
    AUTO_CALENDAR_THRESHOLD,
    BinaryHeapQueue,
    CalendarQueue,
    SCHEDULERS,
    make_queue,
    resolve_scheduler,
)

IMPLS = [BinaryHeapQueue, CalendarQueue]


def drain_all(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


class TestExactOrder:
    @pytest.mark.parametrize("impl", IMPLS)
    def test_random_batch_pops_sorted(self, impl):
        rng = random.Random(7)
        queue = impl()
        entries = [
            (rng.choice([0.0, rng.random() * rng.choice([1e-6, 1.0, 1e3])]), tok, tok % 9)
            for tok in range(500)
        ]
        for entry in entries:
            queue.push(entry)
        assert drain_all(queue) == sorted(entries)
        assert queue.pop() is None
        assert len(queue) == 0

    @pytest.mark.parametrize("impl", IMPLS)
    def test_equal_times_order_by_token(self, impl):
        queue = impl()
        for tok in (5, 1, 3, 2, 4):
            queue.push((1.25, tok, 0))
        assert [e[1] for e in drain_all(queue)] == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("impl", IMPLS)
    def test_interleaved_against_reference(self, impl):
        """Random push/pop interleaving reproduces a sorted-list oracle."""
        rng = random.Random(42)
        queue = impl()
        oracle: list[tuple] = []
        clock = 0.0
        tok = 0
        for _ in range(2000):
            if oracle and rng.random() < 0.45:
                entry = queue.pop()
                assert entry == oracle.pop(0)
                clock = entry[0]
            else:
                # DES-style: pushes never go below the last service time,
                # except the occasional cross-window rewind (see below)
                t = clock + rng.random() * rng.choice([1e-7, 1e-3, 10.0])
                entry = (t, tok, tok % 13)
                tok += 1
                queue.push(entry)
                oracle.append(entry)
                oracle.sort()
        assert drain_all(queue) == oracle

    @pytest.mark.parametrize("impl", IMPLS)
    def test_push_below_cursor_rewinds(self, impl):
        """A wake-up earlier than everything served so far must still pop
        first (the sharded executor delivers these at round edges)."""
        queue = impl()
        for tok in range(100):
            queue.push((float(tok) + 100.0, tok, 0))
        for _ in range(50):
            queue.pop()
        queue.push((0.5, 1000, 3))
        assert queue.pop() == (0.5, 1000, 3)
        assert queue.pop() == (150.0, 50, 0)

    @pytest.mark.parametrize("impl", IMPLS)
    def test_gate_style_entries(self, impl):
        """Entries may carry non-comparable payload past the tie-break."""
        queue = impl()
        payloads = [object() for _ in range(4)]
        queue.push((2.0, 1, 7, 0, "recv", payloads[0]))
        queue.push((1.0, 3, 2, 1, "deliver", payloads[1]))
        queue.push((1.0, 3, 1, 2, "deliver", payloads[2]))
        queue.push((1.0, 2, 9, 3, "recv", payloads[3]))
        order = [e[5] for e in drain_all(queue)]
        assert order == [payloads[3], payloads[2], payloads[1], payloads[0]]


class TestLazyStaleness:
    @pytest.mark.parametrize("impl", IMPLS)
    def test_pop_skips_dead_entries(self, impl):
        dead = {1, 3}
        queue = impl(live=lambda e: e[1] not in dead)
        for tok in range(5):
            queue.push((float(tok), tok, 0))
        assert [e[1] for e in drain_all(queue)] == [0, 2, 4]

    @pytest.mark.parametrize("impl", IMPLS)
    def test_min_time_prunes_and_reports_live_minimum(self, impl):
        dead = {0}
        queue = impl(live=lambda e: e[1] not in dead)
        queue.push((1.0, 0, 0))
        queue.push((2.0, 1, 1))
        assert queue.min_time() == 2.0
        assert queue.peek() == (2.0, 1, 1)
        dead.add(1)
        assert queue.min_time() == float("inf")
        assert queue.pop() is None

    @pytest.mark.parametrize("impl", IMPLS)
    def test_all_stale_queue_pops_none(self, impl):
        queue = impl(live=lambda e: False)
        for tok in range(300):
            queue.push((float(tok % 17), tok, 0))
        assert queue.pop() is None
        assert queue.min_time() == float("inf")


class TestHorizon:
    @pytest.mark.parametrize("impl", IMPLS)
    def test_pop_respects_horizon_and_leaves_entry(self, impl):
        queue = impl()
        queue.push((1.0, 0, 0))
        queue.push((5.0, 1, 1))
        assert queue.pop(horizon=3.0) == (1.0, 0, 0)
        assert queue.pop(horizon=3.0) is None
        assert len(queue) == 1  # parked for the next window
        assert queue.pop(horizon=5.0) is None  # boundary is exclusive
        assert queue.pop(horizon=5.1) == (5.0, 1, 1)


class TestCalendarResizing:
    def test_grows_and_shrinks_without_losing_order(self):
        rng = random.Random(3)
        queue = CalendarQueue()
        entries = [(rng.random() * 50.0, tok, 0) for tok in range(5000)]
        for entry in entries:
            queue.push(entry)
        assert queue._nbuckets > CalendarQueue.MIN_BUCKETS
        assert drain_all(queue) == sorted(entries)
        assert queue._nbuckets == CalendarQueue.MIN_BUCKETS

    def test_simultaneous_population_keeps_width(self):
        queue = CalendarQueue()
        entries = [(0.0, tok, 0) for tok in range(200)]
        for entry in entries:
            queue.push(entry)
        assert drain_all(queue) == entries

    def test_day_boundary_entry_is_servable(self):
        """Regression: push buckets by ``int(t / width)`` and the serve
        scan must use the *same* division — with a top computed as
        ``(day + 1) * width`` these disagree at day boundaries (float
        rounding) and this exact entry was never servable: pop() hung
        forever re-jumping to its own day."""
        width = 4.995201090399136e-05
        queue = CalendarQueue(width=width)
        entry = (347.908363048686, 1, 0)
        # the reproduction's precondition: t lands at/after its own day's
        # computed top, so a `t < (day + 1) * width` serve test skips it
        day = int(entry[0] / width)
        assert entry[0] >= (day + 1) * width
        queue.push(entry)
        assert queue.pop() == entry
        assert queue.pop() is None

    def test_day_boundary_entries_stay_ordered(self):
        """Times at exact multiples of awkward widths must still pop in
        exact order (not be deferred behind later-day entries)."""
        rng = random.Random(11)
        for _ in range(50):
            width = rng.random() * rng.choice([1e-7, 1e-3, 1.0])
            queue = CalendarQueue(width=width)
            entries = []
            for tok in range(120):
                day = rng.randint(0, 400)
                t = rng.choice(
                    [day * width, (day + 1) * width, day * width + rng.random() * width]
                )
                entries.append((t, tok, 0))
            for entry in entries:
                queue.push(entry)
            assert drain_all(queue) == sorted(entries)

    def test_sparse_then_dense_cluster(self):
        """Clusters far apart in virtual time (the year-scan jump path)."""
        queue = CalendarQueue()
        entries = []
        tok = 0
        for base in (0.0, 1e3, 2e9):
            for _ in range(60):
                entries.append((base + tok * 1e-9, tok, 0))
                tok += 1
        shuffled = entries[:]
        random.Random(9).shuffle(shuffled)
        for entry in shuffled:
            queue.push(entry)
        assert drain_all(queue) == sorted(entries)


class TestFactory:
    def test_resolve_auto_by_rank_count(self):
        assert resolve_scheduler("auto", 8) == "heap"
        assert resolve_scheduler("auto", AUTO_CALENDAR_THRESHOLD) == "calendar"
        assert resolve_scheduler("heap", 10**6) == "heap"
        assert resolve_scheduler("calendar", 1) == "calendar"
        with pytest.raises(ValueError):
            resolve_scheduler("fifo", 8)

    def test_make_queue_types(self):
        assert isinstance(make_queue("heap", 10**7), BinaryHeapQueue)
        assert isinstance(
            make_queue("auto", AUTO_CALENDAR_THRESHOLD), CalendarQueue
        )
        assert isinstance(make_queue("auto", 2), BinaryHeapQueue)
        assert set(SCHEDULERS) == {"heap", "calendar"}

    def test_iteration_sees_all_entries(self):
        for impl in IMPLS:
            queue = impl()
            entries = {(float(tok), tok, 0) for tok in range(40)}
            for entry in entries:
                queue.push(entry)
            assert set(queue) == entries
            assert bool(queue)
