"""Pretty-printer round-trip: print(parse(src)) re-parses to the same tree.

Includes a hypothesis property test over randomly generated programs, which
exercises the lexer, parser and printer together.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang import ast_nodes as ast
from repro.minilang.parser import parse_program
from repro.minilang.pretty import expr_to_str, pretty_print
from tests.conftest import FIG3_SOURCE, IMBALANCED_SOURCE


def normalize(program: ast.Program) -> str:
    return pretty_print(program)


def assert_roundtrip(source: str) -> None:
    p1 = parse_program(source)
    text1 = normalize(p1)
    p2 = parse_program(text1)
    text2 = normalize(p2)
    assert text1 == text2


class TestFixedPrograms:
    def test_fig3(self):
        assert_roundtrip(FIG3_SOURCE)

    def test_imbalanced(self):
        assert_roundtrip(IMBALANCED_SOURCE)

    def test_all_registry_apps(self):
        from repro.apps import APPS

        for spec in APPS.values():
            assert_roundtrip(spec.source)

    def test_sendrecv_with_recv_tag(self):
        assert_roundtrip(
            "def main() { sendrecv(dest = 1, tag = 2, bytes = 8,"
            " src = 0, recv_tag = 4); }"
        )

    def test_sendrecv_recv_tag_survives_ast_copy(self):
        # the parser aliases a defaulted recv_tag to the very tag
        # expression object; printing must not depend on that aliasing
        # (deepcopy breaks identity but not meaning)
        import copy

        source = (
            "def main() { sendrecv(dest = (rank + 1) % nprocs, tag = 1,"
            " bytes = 64, src = (rank - 1 + nprocs) % nprocs); }"
        )
        program = parse_program(source)
        assert pretty_print(copy.deepcopy(program)) == pretty_print(program)
        assert "recv_tag" not in pretty_print(program)

    def test_sendrecv_explicit_equal_recv_tag_is_elided(self):
        # recv_tag textually equal to tag carries no information; the
        # normal form drops it so print -> parse -> print is a fixpoint
        explicit = parse_program(
            "def main() { sendrecv(dest = 1, tag = 3, bytes = 8,"
            " src = 0, recv_tag = 3); }"
        )
        defaulted = parse_program(
            "def main() { sendrecv(dest = 1, tag = 3, bytes = 8, src = 0); }"
        )
        assert pretty_print(explicit) == pretty_print(defaulted)

    def test_any_wildcards(self):
        assert_roundtrip("def main() { recv(src = ANY, tag = ANY); }")

    def test_funcref_and_indirect_call(self):
        assert_roundtrip(
            "def main() { var f = &foo; f(); } def foo() { barrier(); }"
        )

    def test_string_escaping(self):
        assert_roundtrip(
            'def main() { compute(flops = 1, name = "a\\"b\\\\c"); }'
        )

    def test_empty_for_clauses(self):
        assert_roundtrip("def main() { for (;;) { return; } }")


# ---------------------------------------------------------------------------
# Random program generation for the property test
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])


@st.composite
def exprs(draw, depth=0):
    leaf = draw(
        st.sampled_from(["int", "var"])
        if depth >= 3
        else st.sampled_from(["int", "float", "var", "bin", "un", "call"])
    )
    if leaf == "int":
        return str(draw(st.integers(min_value=0, max_value=9999)))
    if leaf == "float":
        return repr(
            draw(
                st.floats(
                    min_value=0.01, max_value=1000, allow_nan=False
                )
            )
        )
    if leaf == "var":
        return draw(st.sampled_from(["rank", "nprocs", "a", "b"]))
    if leaf == "un":
        return f"(-{draw(exprs(depth + 1))})"
    if leaf == "call":
        return f"min({draw(exprs(depth + 1))}, {draw(exprs(depth + 1))})"
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "=="]))
    return f"({draw(exprs(depth + 1))} {op} {draw(exprs(depth + 1))})"


@st.composite
def stmts(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["var", "assign", "compute", "send", "recv", "coll", "if", "for"]
            if depth < 2
            else ["var", "assign", "compute", "coll"]
        )
    )
    if kind == "var":
        return f"var {draw(_names)} = {draw(exprs())};"
    if kind == "assign":
        return f"a = {draw(exprs())};"
    if kind == "compute":
        return f"compute(flops = {draw(exprs())});"
    if kind == "send":
        return f"send(dest = {draw(exprs())}, tag = 1, bytes = 64);"
    if kind == "recv":
        return "recv(src = ANY, tag = ANY);"
    if kind == "coll":
        return draw(
            st.sampled_from(
                ["barrier();", "allreduce(bytes = 8);", "bcast(root = 0, bytes = 4);"]
            )
        )
    inner = " ".join(draw(st.lists(stmts(depth + 1), min_size=0, max_size=3)))
    if kind == "if":
        return f"if ({draw(exprs())}) {{ {inner} }}"
    return f"for (var i = 0; i < 3; i = i + 1) {{ {inner} }}"


@st.composite
def programs(draw):
    body = " ".join(draw(st.lists(stmts(), min_size=0, max_size=6)))
    return f"def main() {{ var a = 0; var b = 1; {body} }}"


class TestPropertyRoundtrip:
    @settings(max_examples=150, deadline=None)
    @given(programs())
    def test_random_program_roundtrip(self, source):
        assert_roundtrip(source)

    @settings(max_examples=100, deadline=None)
    @given(exprs())
    def test_expression_roundtrip(self, expr_text):
        src = f"def main() {{ var a = 0; var b = 0; a = {expr_text}; }}"
        p = parse_program(src)
        stmt = p.entry.body.statements[-1]
        printed = expr_to_str(stmt.value)
        p2 = parse_program(
            f"def main() {{ var a = 0; var b = 0; a = {printed}; }}"
        )
        stmt2 = p2.entry.body.statements[-1]
        assert expr_to_str(stmt2.value) == printed
