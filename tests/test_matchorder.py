"""Static match-order analysis: determinism proofs and their limits.

Two halves, mirroring the zero-false-positive stance of the lint:

* **Unit coverage** of the proof machinery — epoch pruning across sure
  separators, chain refinement, per-rank devirtualization maps, the
  cross-scale claim discipline.
* **Adversarial soundness corpus**: programs engineered so a sloppy
  analysis would prove determinism it must not — equal-virtual-time
  racing senders, sender sets that diverge only beyond the default
  witness window, data-dependent sends.  Every case must FAIL the proof
  (racy verdict, degraded report, or an honest ``sampled`` status); a
  single false proof here is a correctness bug in the engine's wildcard
  devirtualization, not just a lint inaccuracy.
"""

import random

import pytest

from repro.analysis import (
    analyze_match_order,
    analyze_match_order_scales,
    devirt_sources,
    program_has_wildcards,
)
from repro.minilang import parse_program


def _prog(source, name="t"):
    return parse_program(source, f"{name}.mm")


RING = """
def main() {
    for (var i = 0; i < 3; i = i + 1) {
        send(dest = (rank + 1) % nprocs, tag = 7, bytes = 64);
        recv(src = ANY, tag = 7);
        barrier();
    }
}
"""

FAN_IN = """
def main() {
    if (rank == 0) {
        for (var i = 1; i < nprocs; i = i + 1) {
            recv(src = ANY, tag = 1);
        }
    } else {
        send(dest = 0, tag = 1, bytes = 8);
    }
}
"""

TWO_PHASE = """
def main() {
    if (rank == 1) { send(dest = 0, tag = 5, bytes = 8); }
    if (rank == 0) { recv(src = ANY, tag = 5); }
    barrier();
    if (rank == 2) { send(dest = 0, tag = 5, bytes = 8); }
    if (rank == 0) { recv(src = ANY, tag = 5); }
}
"""


class TestConcreteVerdicts:
    def test_ring_is_deterministic_with_full_devirt_map(self):
        report = analyze_match_order(_prog(RING), 8)
        assert report.exact
        (v,) = report.verdicts
        assert v.deterministic
        assert v.op == "recv" and v.blocking
        assert v.sources == {r: (r - 1) % 8 for r in range(8)}
        assert v.witness_rank is None

    def test_fan_in_is_racy_with_witness(self):
        report = analyze_match_order(_prog(FAN_IN), 8)
        assert report.exact
        (v,) = report.verdicts
        assert not v.deterministic
        assert v.witness_rank == 0
        assert v.witness_sources == tuple(range(1, 8))
        assert v.sources == {}  # nothing to devirtualize

    def test_two_phase_epoch_pruning(self):
        """The unconditional barrier separates the epochs: the first
        blocking wildcard cannot match the post-barrier sender."""
        report = analyze_match_order(_prog(TWO_PHASE), 4)
        assert report.exact
        first, second = report.verdicts
        assert first.deterministic and first.sources == {0: 1}
        # the second receive keeps both candidates (the matched first
        # receive is guarded, so chain refinement must not trust it) —
        # conservative, and exactly what keeps the proof sound
        assert not second.deterministic
        assert second.witness_sources == (1, 2)

    def test_nonblocking_wildcard_is_not_epoch_pruned(self):
        """An irecv posted before a barrier can complete after it: epoch
        pruning applies to blocking receives only."""
        source = """
        def main() {
            if (rank == 0) {
                irecv(src = ANY, tag = 5, req = r);
                barrier();
                wait(req = r);
            } else {
                barrier();
                if (rank == 1) { send(dest = 0, tag = 5, bytes = 8); }
            }
        }
        """
        report = analyze_match_order(_prog(source), 4)
        assert report.exact
        (v,) = report.verdicts
        assert v.op == "irecv" and not v.blocking
        # exactly one sender exists, so it is still deterministic — the
        # point is the sender was NOT pruned away by the barrier
        assert v.deterministic and v.sources == {0: 1}

    def test_wildcard_tag_aggregates_candidates(self):
        source = """
        def main() {
            if (rank == 0) {
                recv(src = ANY, tag = ANY);
            }
            if (rank == 1) { send(dest = 0, tag = 1, bytes = 8); }
            if (rank == 2) { send(dest = 0, tag = 2, bytes = 8); }
        }
        """
        report = analyze_match_order(_prog(source), 4)
        (v,) = report.verdicts
        assert not v.deterministic
        assert v.witness_sources == (1, 2)

    def test_wildcard_presence_scan(self):
        assert program_has_wildcards(_prog(RING))
        assert not program_has_wildcards(
            _prog("def main() { barrier(); }")
        )


class TestDevirtSources:
    def test_ring_map_matches_verdict(self):
        maps = devirt_sources(_prog(RING), 8)
        (loc_key,) = maps
        assert maps[loc_key] == {r: (r - 1) % 8 for r in range(8)}

    def test_racy_program_gets_no_map(self):
        assert devirt_sources(_prog(FAN_IN), 8) == {}

    def test_partial_map_covers_only_proven_ranks(self):
        """Per-receiver proofs survive other ranks racing at the same
        location (the rewrite key is (location, receiver rank))."""
        source = """
        def main() {
            if (rank < 2) {
                recv(src = ANY, tag = 3);
            }
            if (rank == 2) { send(dest = 0, tag = 3, bytes = 8); }
            if (rank == 3) { send(dest = 1, tag = 3, bytes = 8); }
            if (rank == 4) { send(dest = 1, tag = 3, bytes = 8); }
        }
        """
        maps = devirt_sources(_prog(source), 5)
        (loc_key,) = maps
        # rank 0 has a unique sender; rank 1 races (3 vs 4) and is absent
        assert maps[loc_key] == {0: 2}

    def test_wildcard_free_program_fast_path(self):
        assert devirt_sources(_prog("def main() { allreduce(bytes = 8); }"), 8) == {}


class TestCrossScaleClaims:
    def test_ring_determinism_extends_over_the_range(self):
        report = analyze_match_order_scales(_prog(RING), "4..64")
        assert report.status in ("proven", "exhaustive")
        assert len(report.deterministic) == 1
        assert report.racy == ()

    def test_explicit_scales_are_enumerated_only(self):
        report = analyze_match_order_scales(_prog(RING), "4,8")
        assert report.status == "enumerated"
        assert report.witnesses == (4, 8)

    def test_fan_in_racy_at_every_witness(self):
        report = analyze_match_order_scales(_prog(FAN_IN), "4..32")
        assert report.deterministic == ()
        assert len(report.racy) == 1
        (loc, p) = report.racy[0]
        assert p >= 4


class TestAdversarialSoundness:
    """Programs built to extract a false determinism proof.  Every one
    must fail the proof — the acceptance gate is *zero* false proofs."""

    #: two senders with byte-identical cost structure: their messages
    #: carry equal virtual timestamps, the most hostile race there is
    EQUAL_TIME = """
    def main() {
        if (rank == 0) {
            recv(src = ANY, tag = 9);
            recv(src = ANY, tag = 9);
        }
        if (rank == 1) { send(dest = 0, tag = 9, bytes = 256); }
        if (rank == 2) { send(dest = 0, tag = 9, bytes = 256); }
    }
    """

    #: the sender set changes only past P = 40: an analysis that samples
    #: small witnesses and extrapolates would prove a determinism that
    #: silently breaks at scale
    THRESHOLD = """
    def main() {
        if (rank == 0) { recv(src = ANY, tag = 2); }
        if (rank == 1) { send(dest = 0, tag = 2, bytes = 8); }
        if (nprocs > 40) {
            if (rank == 2) { send(dest = 0, tag = 2, bytes = 8); }
        }
    }
    """

    #: the destination is loop-carried state the comm graph cannot close
    #: over: the graph degrades and nothing may be claimed
    DATA_DEPENDENT = """
    def main() {
        var d = 1;
        for (var i = 0; i < 3; i = i + 1) {
            if (rank == 0) {
                recv(src = ANY, tag = 1);
            }
            if (rank == d) {
                send(dest = 0, tag = 1, bytes = 8);
            }
            d = (d * 2) % nprocs;
            barrier();
        }
    }
    """

    def test_equal_time_race_is_never_proven(self):
        report = analyze_match_order(_prog(self.EQUAL_TIME), 4)
        assert report.exact
        for v in report.verdicts:
            assert not v.deterministic, v
        assert devirt_sources(_prog(self.EQUAL_TIME), 4) == {}

    def test_threshold_race_is_caught_beyond_small_witnesses(self):
        """At small P the program IS deterministic — but the range claim
        must either extend the witness window past the flip (finding the
        race) or degrade to ``sampled``; it must never range-prove."""
        program = _prog(self.THRESHOLD)
        # per-P analysis at P=8: genuinely deterministic there (sound —
        # the engine devirtualizes per concrete run scale)
        at8 = analyze_match_order(program, 8)
        assert at8.verdicts[0].deterministic
        report = analyze_match_order_scales(program, "all")
        if report.status in ("proven", "exhaustive"):
            # the window extended past the flip: the race must be on file
            assert report.racy, report
            assert any(p > 40 for _, p in report.racy)
            assert report.deterministic == ()
        else:
            assert report.status == "sampled"
        # either way: no location is range-claimed deterministic
        assert report.deterministic == ()

    def test_threshold_per_scale_verdicts_flip_honestly(self):
        program = _prog(self.THRESHOLD)
        racy = analyze_match_order(program, 41)
        assert not racy.verdicts[0].deterministic
        assert racy.verdicts[0].witness_sources == (1, 2)

    def test_data_dependent_sends_degrade(self):
        program = _prog(self.DATA_DEPENDENT)
        report = analyze_match_order(program, 8)
        assert not report.exact
        assert report.verdicts == ()
        assert devirt_sources(program, 8) == {}
        scales = analyze_match_order_scales(program, "all")
        assert scales.status == "degraded"
        assert scales.deterministic == ()

    def test_racy_witness_poisons_later_deterministic_witnesses(self):
        """Claim extension regression: a location racy at one witness
        must stay out of ``deterministic`` even if other witnesses prove
        it (enumerated order must not matter)."""
        program = _prog(self.THRESHOLD)
        for spec in ("41,8", "8,41"):
            report = analyze_match_order_scales(program, spec)
            assert report.deterministic == (), spec
            assert any(p == 41 for _, p in report.racy), spec


class TestPropertySweep:
    """Randomized corpora: the proof may be conservative (miss proofs)
    but must never be wrong — every devirtualization map entry names a
    sender that really is the only feasible one at that P."""

    @pytest.mark.parametrize("seed", range(30))
    def test_devirt_map_entries_are_unique_feasible(self, seed):
        rng = random.Random(seed)
        nprocs = rng.randint(4, 9)
        tag = rng.randint(1, 3)
        shape = rng.choice(("ring", "fan", "pair"))
        if shape == "ring":
            source = RING
        elif shape == "fan":
            source = FAN_IN
        else:
            source = f"""
            def main() {{
                if (rank == 0) {{ recv(src = ANY, tag = {tag}); }}
                if (rank == 1) {{ send(dest = 0, tag = {tag}, bytes = 8); }}
            }}
            """
        program = _prog(source, f"sweep{seed}")
        report = analyze_match_order(program, nprocs)
        maps = devirt_sources(program, nprocs)
        if not report.exact:
            assert maps == {}
            return
        for v in report.verdicts:
            srcs = maps.get(v.loc_key, {})
            # map entries must be exactly the verdict's proven sources
            assert srcs == v.sources
            if not v.deterministic:
                assert v.witness_rank is not None
                assert len(v.witness_sources) >= 2
