"""Tools tests: CLI, profile storage round-trip, text viewer."""

import pytest

from repro import ScalAna
from repro.apps import get_app
from repro.detection import detect_scaling_loss
from repro.tools.cli import build_parser, main
from repro.tools.storage import load_profile, profile_file_bytes, save_profile
from repro.tools.viewer import render_report_with_source, source_snippet


@pytest.fixture(scope="module")
def cg_runs():
    tool = ScalAna.for_app(get_app("cg"), seed=1)
    return tool, tool.profile_scales([4, 8])


class TestStorage:
    def test_roundtrip_preserves_report(self, tmp_path, cg_runs):
        tool, runs = cg_runs
        paths = []
        for run in runs:
            p = tmp_path / f"profile_p{run.nprocs}.json"
            save_profile(run, p)
            paths.append(p)
        loaded = [load_profile(p) for p in paths]
        direct = detect_scaling_loss(runs, psg=tool.psg)
        from_disk = detect_scaling_loss(loaded, psg=tool.psg)
        assert [rc.location for rc in direct.root_causes] == [
            rc.location for rc in from_disk.root_causes
        ]
        assert len(direct.abnormal) == len(from_disk.abnormal)

    def test_file_size_small(self, tmp_path, cg_runs):
        """The whole point: profiles are KBs, not GBs."""
        _tool, runs = cg_runs
        p = tmp_path / "prof.json"
        nbytes = save_profile(runs[0], p)
        assert nbytes == profile_file_bytes(p)
        assert nbytes < 200 * 1024

    def test_perf_vectors_roundtrip_exactly(self, tmp_path, cg_runs):
        _tool, runs = cg_runs
        run = runs[0]
        p = tmp_path / "prof.json"
        save_profile(run, p)
        loaded = load_profile(p)
        for key, vec in run.profile.perf.items():
            lv = loaded.profile.perf[key]
            assert lv.time == pytest.approx(vec.time)
            assert lv.counters.tot_ins == pytest.approx(vec.counters.tot_ins)

    def test_comm_edges_roundtrip(self, tmp_path, cg_runs):
        _tool, runs = cg_runs
        run = runs[0]
        p = tmp_path / "prof.json"
        save_profile(run, p)
        loaded = load_profile(p)
        assert set(loaded.comm.edges) == set(run.comm.edges)
        assert loaded.comm.group_stats.keys() == run.comm.group_stats.keys()

    def test_trace_roundtrip_when_requested(self, tmp_path, cg_runs):
        """include_trace=True embeds the columnar ground truth; the loaded
        profile can rebuild the exact timeline (and render it)."""
        from repro.tools.timeline import render_timeline

        tool, runs = cg_runs
        run = runs[0]
        plain = tmp_path / "plain.json"
        with_trace = tmp_path / "with_trace.json"
        n_plain = save_profile(run, plain)
        n_trace = save_profile(run, with_trace, include_trace=True)
        assert n_trace > n_plain  # the trace costs bytes — only on request
        assert load_profile(plain).trace is None
        loaded = load_profile(with_trace)
        assert loaded.trace is not None
        assert loaded.trace.event_count == run.result.trace.event_count
        assert list(loaded.trace.segments()) == list(run.result.trace.segments())
        assert loaded.trace.vertex_time() == run.result.trace.vertex_time()
        # a loaded trace drives the same timeline rendering as the live run
        art = render_timeline(run.result)
        assert art.splitlines()[0].startswith("timeline")

    def test_profile_artifact_exposes_trace(self, cg_runs):
        from repro.api.artifacts import ArtifactKey, ProfileArtifact

        tool, runs = cg_runs
        key = ArtifactKey(source_digest="s", config_digest="c", nprocs=4)
        art = ProfileArtifact(key=key, run=runs[0])
        assert art.trace is runs[0].result.trace
        assert art.trace.event_count > 0

    def test_bad_format_rejected(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a ScalAna profile"):
            load_profile(p)


class TestViewer:
    SOURCE = "line one\nline two\nline three\nline four\n"

    def test_snippet_marks_line(self):
        text = source_snippet(self.SOURCE, 2, context=1)
        assert ">>" in text
        assert "line two" in text
        assert "line one" in text and "line three" in text
        assert "line four" not in text

    def test_snippet_out_of_range(self):
        assert "out of range" in source_snippet(self.SOURCE, 99)

    def test_render_report_with_source(self):
        # SST has a genuine scaling issue, so the report carries causes
        tool = ScalAna.for_app(get_app("sst"), seed=1)
        runs = tool.profile_scales([4, 8])
        report = tool.detect(runs)
        assert report.root_causes
        text = render_report_with_source(report, tool.source)
        assert "Source snippets" in text
        assert "sst.mm" in text

    def test_scalana_view_method(self, cg_runs):
        tool, runs = cg_runs
        report = tool.detect(runs)
        assert "Root causes" in tool.view(report)


class TestCli:
    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "cg" in out and "zeusmp" in out

    def test_static_command(self, capsys):
        assert main(["static", "--app", "cg"]) == 0
        out = capsys.readouterr().out
        assert "before contraction" in out

    def test_prof_then_detect(self, tmp_path, capsys):
        out_dir = str(tmp_path / "profs")
        assert main(["prof", "--app", "cg", "--scales", "4,8", "--out", out_dir]) == 0
        assert main(["detect", "--app", "cg", "--profiles", out_dir]) == 0
        out = capsys.readouterr().out
        assert "Root causes" in out

    def test_run_command_with_source(self, tmp_path, capsys):
        src = tmp_path / "mini.mm"
        src.write_text(
            "def main() { for (var i = 0; i < 5; i = i + 1) {"
            " compute(flops = 1000000 + 9000000 * (1 - min(rank, 1)));"
            " allreduce(bytes = 8); } }"
        )
        assert main(["run", "--source", str(src), "--scales", "2,4"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_detect_needs_two_profiles(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["detect", "--app", "cg", "--profiles", str(tmp_path)])

    def test_missing_app_and_source(self):
        with pytest.raises(SystemExit):
            main(["static"])

    def test_bad_scales(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "cg", "--scales", "abc"])

    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("apps", "static", "prof", "detect", "run"):
            assert cmd in text
