"""Conservative parallel DES: sharded-vs-serial bit-identity and plumbing.

The contract under test is the hard one: for any shard count, executor and
partition, a sharded run must reproduce the serial engine float-for-float —
same ``run_fingerprint`` (profiles + communication dependence + app time)
and the same canonical detection report.
"""

import json

import pytest

from repro.api import AnalysisConfig, Pipeline, Session, run_fingerprint
from repro.api.config import canonical_json
from repro.minilang import parse_program
from repro.psg import build_psg
from repro.runtime import profile_run
from repro.simulator import (
    DeadlockError,
    SimulationConfig,
    simulate,
    simulation_call_count,
)
from repro.simulator.parallel import ShardPlan, simulate_sharded
from tests.conftest import IMBALANCED_SOURCE

RING = """\
def main() {
    for (var it = 0; it < 8; it = it + 1) {
        compute(flops = 100000 + 5000 * rank);
        sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 1024,
                 src = (rank - 1 + nprocs) % nprocs);
    }
}
"""

#: Many-to-one wildcard receives: the matching order depends on the global
#: send order, the exact case the conservative hold protocol exists for.
WILDCARD = """\
def main() {
    if (rank == 0) {
        for (var i = 1; i < nprocs; i = i + 1) {
            recv(src = ANY, tag = 7);
        }
        for (var i = 1; i < nprocs; i = i + 1) {
            send(dest = i, tag = 9, bytes = 8);
        }
    } else {
        compute(flops = 100000 * rank);
        send(dest = 0, tag = 7, bytes = 64 * rank);
        recv(src = 0, tag = 9);
    }
}
"""

#: Wildcard irecvs + waitall + a collective per iteration: every kind of
#: cross-shard coordination in one loop.
WILDCARD_IRECV = """\
def main() {
    for (var it = 0; it < 4; it = it + 1) {
        compute(flops = 50000 + 10000 * rank);
        if (rank == 0) {
            for (var i = 1; i < nprocs; i = i + 1) {
                irecv(src = ANY, tag = ANY, req = r);
            }
            waitall();
            bcast(root = 0, bytes = 8);
        } else {
            send(dest = 0, tag = rank, bytes = 128);
            bcast(root = 0, bytes = 8);
        }
    }
}
"""

COLLECTIVES = """\
def main() {
    for (var it = 0; it < 6; it = it + 1) {
        compute(flops = 80000 + 30000 * (rank % 3));
        allreduce(bytes = 8);
        if (rank % 2 == 0) {
            reduce(root = 0, bytes = 64);
        } else {
            reduce(root = 0, bytes = 64);
        }
    }
    barrier();
}
"""

WORKLOADS = {
    "ring": RING,
    "wildcard": WILDCARD,
    "wildcard_irecv": WILDCARD_IRECV,
    "collectives": COLLECTIVES,
    "imbalanced": IMBALANCED_SOURCE,
}


def _compiled(source, name):
    program = parse_program(source, f"{name}.mm")
    return program, build_psg(program).psg


def _fingerprint(source, name, nprocs, **cfg):
    program, psg = _compiled(source, name)
    run = profile_run(program, psg, SimulationConfig(nprocs=nprocs, **cfg))
    return run_fingerprint(run)


class TestBitIdentity:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_fingerprint_matches_serial(self, workload, shards):
        source = WORKLOADS[workload]
        serial = _fingerprint(source, workload, 9)
        sharded = _fingerprint(
            source, workload, 9,
            sim_shards=shards, sim_executor="inprocess",
        )
        assert sharded == serial

    @pytest.mark.parametrize(
        "bounds", [((0, 1), (1, 9)), ((0, 4), (4, 6), (6, 9))]
    )
    def test_ragged_partitions(self, bounds):
        """Unbalanced explicit partitions reproduce the serial run too."""
        for workload in ("ring", "wildcard_irecv"):
            program, psg = _compiled(WORKLOADS[workload], workload)
            config = SimulationConfig(nprocs=9)
            serial = profile_run(program, psg, config)
            plan = ShardPlan(nprocs=9, bounds=bounds)
            result = simulate_sharded(
                program, psg, config, plan=plan, executor="inprocess"
            )
            from repro.runtime import collect_comm_dependence, sample_result

            assert result.finish_times == serial.result.finish_times
            assert (
                sample_result(result, 200.0).perf
                == serial.profile.perf
            )
            comm = collect_comm_dependence(result)
            assert comm.edge_stats == serial.comm.edge_stats
            assert comm.group_stats == serial.comm.group_stats

    def test_bounded_windows_mode(self):
        """The lookahead-bounded window mode is equally bit-identical."""
        program, psg = _compiled(RING, "ring")
        config = SimulationConfig(nprocs=8)
        serial = simulate(program, psg, config)
        windowed = simulate_sharded(
            program, psg,
            SimulationConfig(nprocs=8, sim_shards=2),
            executor="inprocess", bounded_windows=True,
        )
        assert windowed.finish_times == serial.finish_times
        assert windowed.parallel_stats.rounds >= 2

    def test_canonical_report_bit_identical(self):
        """The BENCH_2 acceptance criterion: AnalysisConfig(sim_shards=4)
        produces a detection report bit-identical to serial."""
        serial_cfg = AnalysisConfig(seed=0)
        shard_cfg = AnalysisConfig(
            seed=0, sim_shards=4, sim_executor="inprocess"
        )
        scales = [4, 8, 16]
        serial = Pipeline(
            source=IMBALANCED_SOURCE, filename="imbalanced.mm",
            config=serial_cfg,
        ).run(scales)
        sharded = Pipeline(
            source=IMBALANCED_SOURCE, filename="imbalanced.mm",
            config=shard_cfg,
        ).run(scales)
        a = serial.report.to_json_dict()
        b = sharded.report.to_json_dict()
        a["detection_seconds"] = b["detection_seconds"] = 0.0
        assert canonical_json(a) == canonical_json(b)

    def test_sampled_comm_collection_matches_serial(self):
        """Random-instrumentation sampling (comm_sample_probability < 1)
        must sample the identical event subset for sharded runs: the
        keep/drop draw is a pure function of event content, not of the
        (order-divergent) merged record order."""
        program, psg = _compiled(IMBALANCED_SOURCE, "imb")
        config = dict(nprocs=12)
        for probability in (0.3, 0.7):
            serial = profile_run(
                program, psg, SimulationConfig(**config),
                comm_sample_probability=probability,
            )
            sharded = profile_run(
                program, psg,
                SimulationConfig(
                    **config, sim_shards=3, sim_executor="inprocess"
                ),
                comm_sample_probability=probability,
            )
            assert sharded.comm.recorded_events == serial.comm.recorded_events
            assert run_fingerprint(sharded) == run_fingerprint(serial)

    def test_trace_aggregates_match_serial(self):
        """Merged columnar traces aggregate bit-identically (per-(rank,
        vid) float sums), including ring mode (record_segments=False)."""
        program, psg = _compiled(IMBALANCED_SOURCE, "imb")
        for record in (True, False):
            serial = simulate(
                program, psg,
                SimulationConfig(nprocs=8, record_segments=record),
            )
            sharded = simulate(
                program, psg,
                SimulationConfig(
                    nprocs=8, record_segments=record,
                    sim_shards=3, sim_executor="inprocess",
                ),
            )
            assert sharded.vertex_time == serial.vertex_time
            assert sharded.vertex_wait == serial.vertex_wait
            assert sharded.vertex_visits == serial.vertex_visits
            assert sharded.finish_times == serial.finish_times
            assert sharded.trace.event_count == serial.trace.event_count


#: Regression for the wildcard-gate rewind bug: a multi-iteration wildcard
#: fan-in where fast senders race a whole iteration ahead of the receiver.
#: A round's replay then commits far-future deliveries to the mailbox
#: *before* the receiver posts its next wildcard into the existing gate —
#: without rewinding the committed-but-unmatched messages past the new
#: receive's key, its resolution scan cannot see them and a later queued
#: delivery jumps the canonical match order (diverging from serial).
RACING_WILDCARD_LOOP = """\
def main() {
    for (var it = 0; it < 2; it = it + 1) {
        compute(flops = 50000 + floor(30000 * hashrand(rank, it)));
        if (rank == 0) {
            for (var i = 1; i < nprocs; i = i + 1) {
                recv(src = ANY, tag = 2);
            }
        } else {
            compute(flops = 20000 * rank + floor(20000 * hashrand(rank, it)));
            send(dest = 0, tag = 2, bytes = 256);
        }
        isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 2048, req = s);
        irecv(src = (rank - 1 + nprocs) % nprocs, tag = 1, req = r);
        waitall();
    }
}
"""


class TestWildcardGateRewind:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_racing_wildcard_loop_matches_serial(self, shards):
        serial = _fingerprint(RACING_WILDCARD_LOOP, "racewild", 9)
        assert _fingerprint(
            RACING_WILDCARD_LOOP, "racewild", 9,
            sim_shards=shards, sim_executor="inprocess",
        ) == serial

    def test_match_pairing_identical_to_serial(self):
        program, psg = _compiled(RACING_WILDCARD_LOOP, "racewild")
        serial = simulate(program, psg, SimulationConfig(nprocs=9))
        sharded = simulate_sharded(
            program, psg, SimulationConfig(nprocs=9, sim_shards=3),
            executor="inprocess",
        )
        pair = lambda r: sorted(
            (rec.send_rank, rec.send_time, rec.recv_rank, rec.completion)
            for rec in r.p2p_records
        )
        assert pair(sharded) == pair(serial)
        assert sharded.finish_times == serial.finish_times


#: All senders race one wildcard receiver at *exactly* equal virtual
#: times: the match order is ambiguous in MPI semantics (and emergent in
#: the serial engine), so this sits outside the bit-identity guarantee —
#: see the carve-out in repro/simulator/parallel/__init__.py.
SYMMETRIC_WILDCARD = """\
def main() {
    if (rank == 0) {
        for (var i = 1; i < nprocs; i = i + 1) {
            recv(src = ANY, tag = 7);
        }
    } else {
        compute(flops = 100000);
        send(dest = 0, tag = 7, bytes = 64);
    }
}
"""


class TestWildcardTieCarveOut:
    """Simultaneous ANY-source races: sharded mode must be *canonical*
    (lowest sender first) and deterministic across shard counts and
    executors — equality with the serial engine's emergent tie order is
    explicitly not promised."""

    def test_tied_race_is_canonical_and_shard_count_invariant(self):
        program, psg = _compiled(SYMMETRIC_WILDCARD, "symwild")
        outcomes = set()
        for shards in (2, 3, 4):
            result = simulate_sharded(
                program, psg, SimulationConfig(nprocs=7, sim_shards=shards),
                executor="inprocess",
            )
            order = [r.send_rank for r in result.p2p_records]
            # canonical resolution: simultaneous senders match lowest-first
            assert order == sorted(order)
            outcomes.add(
                (tuple(order), tuple(result.finish_times))
            )
        assert len(outcomes) == 1  # invariant across shard counts

    def test_time_separated_race_matches_serial(self):
        """The same shape with distinct send times is inside the
        guarantee (this is what WILDCARD above sweeps; asserted here
        side by side with the tied variant for contrast)."""
        staggered = SYMMETRIC_WILDCARD.replace(
            "flops = 100000", "flops = 100000 * rank"
        )
        serial = _fingerprint(staggered, "stagwild", 7)
        for shards in (2, 3):
            assert _fingerprint(
                staggered, "stagwild", 7,
                sim_shards=shards, sim_executor="inprocess",
            ) == serial


class TestMultiprocessExecutor:
    def test_fingerprint_matches_serial(self):
        serial = _fingerprint(RING, "ring", 8)
        sharded = _fingerprint(
            RING, "ring", 8, sim_shards=2, sim_executor="process"
        )
        assert sharded == serial

    def test_identical_to_inprocess_executor(self):
        """Both executors traverse the same rounds: traces, records and
        stats are equal element-for-element, not just fingerprint-equal."""
        program, psg = _compiled(WILDCARD_IRECV, "wi")
        results = {}
        for executor in ("inprocess", "process"):
            results[executor] = simulate_sharded(
                program, psg, SimulationConfig(nprocs=6, sim_shards=2),
                executor=executor,
            )
        a, b = results["inprocess"], results["process"]
        assert a.parallel_stats.rounds == b.parallel_stats.rounds
        assert a.finish_times == b.finish_times
        ca, cb = a.trace.columns(), b.trace.columns()
        for column in ca:
            assert ca[column].tolist() == cb[column].tolist()
        assert len(a.p2p_records) == len(b.p2p_records)
        for ra, rb in zip(a.p2p_records, b.p2p_records):
            assert (ra.send_rank, ra.send_vid, ra.recv_rank, ra.recv_vid,
                    ra.send_time, ra.arrival) == (
                rb.send_rank, rb.send_vid, rb.recv_rank, rb.recv_vid,
                rb.send_time, rb.arrival)


class TestShardPlan:
    def test_contiguous_balanced_and_clamped(self):
        plan = ShardPlan.contiguous(10, 3)
        assert plan.bounds == ((0, 4), (4, 7), (7, 10))
        assert ShardPlan.contiguous(2, 8).nshards == 2
        assert ShardPlan.contiguous(5, 1).bounds == ((0, 5),)

    def test_shard_of_and_owner_table(self):
        plan = ShardPlan.contiguous(10, 3)
        table = plan.owner_table()
        for rank in range(10):
            assert plan.shard_of(rank) == table[rank]
            assert rank in plan.ranks(table[rank])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(nprocs=4, bounds=((0, 2), (3, 4)))  # gap
        with pytest.raises(ValueError):
            ShardPlan(nprocs=4, bounds=((0, 2), (2, 2), (2, 4)))  # empty
        with pytest.raises(ValueError):
            ShardPlan(nprocs=4, bounds=((0, 2),))  # short

    def test_lookahead_is_network_latency(self):
        from repro.simulator import NetworkModel

        plan = ShardPlan.contiguous(8, 2)
        assert plan.lookahead(NetworkModel(latency=3.5e-6)) == 3.5e-6


class TestAccounting:
    def test_sharded_run_counts_one_logical_simulation(self):
        """The satellite fix: multiprocess execution must not under-report
        to the coordinator process's counter."""
        program, psg = _compiled(RING, "ring")
        for executor in ("inprocess", "process"):
            before = simulation_call_count()
            result = simulate(
                program, psg,
                SimulationConfig(
                    nprocs=6, sim_shards=2, sim_executor=executor
                ),
            )
            assert simulation_call_count() - before == 1
            stats = result.parallel_stats
            assert stats.shards == 2
            assert stats.executor == executor
            # worker engine runs aggregated back to the coordinator
            assert stats.engine_runs == 2
            assert stats.rounds >= 1

    def test_session_cache_hits_across_shard_settings(self):
        """sim_shards is digest-neutral: a serial-cached artifact is a hit
        for a sharded request, and the hit performs zero simulations."""
        serial_cfg = AnalysisConfig(seed=0)
        shard_cfg = AnalysisConfig(
            seed=0, sim_shards=3, sim_executor="inprocess"
        )
        assert serial_cfg.digest() == shard_cfg.digest()
        session = Session()
        session.pipeline(IMBALANCED_SOURCE, serial_cfg).profile(8)
        before = simulation_call_count()
        artifact = session.pipeline(IMBALANCED_SOURCE, shard_cfg).profile(8)
        assert artifact.cached
        assert simulation_call_count() == before
        assert session.stats.hits == 1

    def test_config_round_trips_shard_fields(self):
        config = AnalysisConfig(sim_shards=4, sim_executor="process")
        assert AnalysisConfig.from_json(config.to_json()) == config
        # pre-sharding documents load with defaults
        doc = json.loads(config.to_json())
        del doc["sim_shards"], doc["sim_executor"]
        old = AnalysisConfig.from_dict(doc)
        assert old.sim_shards == 1 and old.sim_executor == "auto"
        with pytest.raises(ValueError):
            AnalysisConfig(sim_shards=0)
        with pytest.raises(ValueError):
            AnalysisConfig(sim_executor="threads")


DEADLOCK = """\
def main() {
    if (rank == 0) {
        recv(src = 1, tag = 1);
    } else {
        if (rank == 1) {
            recv(src = 0, tag = 1);
        } else {
            compute(flops = 1000);
        }
    }
}
"""


class TestErrorParity:
    def test_deadlock_detected_like_serial(self):
        program, psg = _compiled(DEADLOCK, "deadlock")
        with pytest.raises(DeadlockError) as serial_err:
            simulate(program, psg, SimulationConfig(nprocs=4))
        with pytest.raises(DeadlockError) as shard_err:
            simulate(
                program, psg,
                SimulationConfig(
                    nprocs=4, sim_shards=2, sim_executor="inprocess"
                ),
            )
        assert len(shard_err.value.blocked) == len(serial_err.value.blocked)
        assert "2 of 4 ranks blocked" in str(shard_err.value)

    def test_deadlock_with_held_wildcard(self):
        """A wildcard receive that never gets a message deadlocks, not
        livelocks, under the hold protocol."""
        source = """\
def main() {
    if (rank == 0) {
        recv(src = ANY, tag = 1);
    } else {
        compute(flops = 1000);
    }
}
"""
        program, psg = _compiled(source, "wilddead")
        with pytest.raises(DeadlockError):
            simulate(
                program, psg,
                SimulationConfig(
                    nprocs=4, sim_shards=2, sim_executor="inprocess"
                ),
            )

    def test_collective_mismatch_propagates(self):
        from repro.simulator import CollectiveMismatchError

        source = """\
def main() {
    if (rank == 0) {
        allreduce(bytes = 8);
    } else {
        barrier();
    }
}
"""
        program, psg = _compiled(source, "mismatch")
        with pytest.raises(CollectiveMismatchError):
            simulate(
                program, psg,
                SimulationConfig(
                    nprocs=4, sim_shards=2, sim_executor="inprocess"
                ),
            )


class TestCLI:
    def test_run_with_sim_shards_is_bit_identical(self, tmp_path, capsys):
        from repro.tools.cli import main

        source = tmp_path / "ring.mm"
        source.write_text(RING)
        assert main([
            "run", "--source", str(source), "--scales", "4,8", "--json",
        ]) == 0
        serial_out = capsys.readouterr().out
        assert main([
            "run", "--source", str(source), "--scales", "4,8", "--json",
            "--sim-shards", "2", "--sim-executor", "inprocess",
        ]) == 0
        shard_out = capsys.readouterr().out
        a, b = json.loads(serial_out), json.loads(shard_out)
        a["detection_seconds"] = b["detection_seconds"] = 0.0
        assert a == b

    def test_simulate_subcommand(self, tmp_path, capsys):
        from repro.tools.cli import main

        source = tmp_path / "ring.mm"
        source.write_text(RING)
        assert main([
            "simulate", "--source", str(source), "--nprocs", "8",
            "--sim-shards", "2", "--sim-executor", "inprocess",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "events" in out


class TestCommGraphPartition:
    """The PR 7 ``sim_partition="commgraph"`` knob: comm-aware cuts join
    the bit-identity sweeps, and the planner itself is sane."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_fingerprint_matches_serial(self, workload, shards):
        source = WORKLOADS[workload]
        serial = _fingerprint(source, workload, 9)
        sharded = _fingerprint(
            source, workload, 9,
            sim_shards=shards, sim_executor="inprocess",
            sim_partition="commgraph",
        )
        assert sharded == serial

    def test_process_executor_matches_serial(self):
        serial = _fingerprint(RING, "ring", 8)
        sharded = _fingerprint(
            RING, "ring", 8,
            sim_shards=2, sim_executor="process",
            sim_partition="commgraph",
        )
        assert sharded == serial

    def test_canonical_report_bit_identical(self):
        """The ISSUE 7 acceptance criterion: commgraph partitioning
        reproduces the serial detection report byte-for-byte."""
        serial_cfg = AnalysisConfig(seed=0)
        part_cfg = AnalysisConfig(
            seed=0, sim_shards=4, sim_executor="inprocess",
            sim_partition="commgraph",
        )
        scales = [4, 8, 16]
        serial = Pipeline(
            source=IMBALANCED_SOURCE, filename="imbalanced.mm",
            config=serial_cfg,
        ).run(scales)
        sharded = Pipeline(
            source=IMBALANCED_SOURCE, filename="imbalanced.mm",
            config=part_cfg,
        ).run(scales)
        a = serial.report.to_json_dict()
        b = sharded.report.to_json_dict()
        a["detection_seconds"] = b["detection_seconds"] = 0.0
        assert canonical_json(a) == canonical_json(b)

    def test_scheduler_sweep_matches_serial(self):
        """commgraph partitioning composes with both event schedulers."""
        serial = _fingerprint(RING, "ring", 9)
        for scheduler in ("heap", "calendar"):
            sharded = _fingerprint(
                RING, "ring", 9,
                sim_shards=3, sim_executor="inprocess",
                sim_partition="commgraph", sim_scheduler=scheduler,
            )
            assert sharded == serial

    def test_plan_tiles_and_respects_ring_locality(self):
        """from_comm_graph produces a valid contiguous tiling whose cut
        cost never exceeds the balanced contiguous plan's."""
        from repro.analysis import build_comm_graph

        def cut_cost(graph, plan, nprocs):
            weights = graph.edge_weights(nprocs)
            owner = plan.owner_table()
            return sum(
                w for (lo, hi), w in weights.items()
                if owner[lo] != owner[hi]
            )

        program, _psg = _compiled(RING, "ring")
        graph = build_comm_graph(program)
        assert graph.exact, graph.reason
        for nprocs, nshards in ((16, 4), (9, 2), (7, 3), (12, 5)):
            plan = ShardPlan.from_comm_graph(graph, nprocs, nshards)
            assert plan.nshards == nshards
            assert plan.bounds[0][0] == 0
            assert plan.bounds[-1][1] == nprocs
            contiguous = ShardPlan.contiguous(nprocs, nshards)
            assert cut_cost(graph, plan, nprocs) <= cut_cost(
                graph, contiguous, nprocs
            )

    def test_degraded_graph_falls_back_to_contiguous(self):
        """A program whose comm graph cannot be built exactly (data-
        dependent while loop around communication) silently gets the
        contiguous plan — the knob must never break a run."""
        from repro.simulator.parallel import plan_for

        source = """\
def main() {
    var s = 1;
    while (s < nprocs) {
        sendrecv(dest = (rank + s) % nprocs, tag = 1, bytes = 64,
                 src = (rank - s + nprocs) % nprocs);
        s = s * 2;
    }
}
"""
        program, psg = _compiled(source, "hypercube")
        config = SimulationConfig(
            nprocs=8, sim_shards=2, sim_executor="inprocess",
            sim_partition="commgraph",
        )
        plan = plan_for(program, config)
        assert plan.bounds == ShardPlan.contiguous(8, 2).bounds
        serial = simulate(program, psg, SimulationConfig(nprocs=8))
        sharded = simulate_sharded(program, psg, config)
        assert sharded.finish_times == serial.finish_times

    def test_partition_knob_is_digest_neutral(self):
        base = AnalysisConfig(seed=0)
        part = AnalysisConfig(seed=0, sim_partition="commgraph")
        assert base.digest() == part.digest()
        assert AnalysisConfig.from_json(part.to_json()) == part
        # pre-PR-7 documents (no sim_partition key) load with the default
        assert "sim_partition" not in json.loads(base.to_json())
        assert AnalysisConfig.from_json(base.to_json()).sim_partition == (
            "contiguous"
        )
        with pytest.raises(ValueError):
            AnalysisConfig(sim_partition="random")
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=4, sim_partition="metis")
