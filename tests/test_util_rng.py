"""Tests for the deterministic named RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_root_seed_changes_result(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_changes_result(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_key_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_in_63_bit_range(self):
        for seed in (0, 1, 2**62, 12345):
            v = derive_seed(seed, "x")
            assert 0 <= v < 2**63

    def test_int_vs_similar_string_keys_differ(self):
        assert derive_seed(1, 5) != derive_seed(1, "5")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_stable_under_hypothesis(self, seed, key):
        assert derive_seed(seed, key) == derive_seed(seed, key)


class TestRngStream:
    def test_same_keys_same_draws(self):
        a = RngStream(7, "pmu", 3)
        b = RngStream(7, "pmu", 3)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_keys_different_draws(self):
        a = RngStream(7, "pmu", 3)
        b = RngStream(7, "pmu", 4)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_child_independent_of_parent_draws(self):
        parent = RngStream(7, "x")
        child1 = parent.child("c")
        parent.uniform()  # consuming parent draws must not affect children
        child2 = RngStream(7, "x").child("c")
        assert child1.uniform() == child2.uniform()

    def test_lognormal_factor_sigma_zero_is_one(self):
        assert RngStream(1).lognormal_factor(0.0) == 1.0

    def test_lognormal_factor_positive(self):
        s = RngStream(1, "ln")
        assert all(s.lognormal_factor(0.5) > 0 for _ in range(100))

    def test_lognormal_median_near_one(self):
        s = RngStream(1, "ln2")
        draws = [s.lognormal_factor(0.3) for _ in range(2000)]
        assert 0.9 < float(np.median(draws)) < 1.1

    def test_bernoulli_edges(self):
        s = RngStream(1)
        assert s.bernoulli(0.0) is False
        assert s.bernoulli(1.0) is True
        assert s.bernoulli(-0.5) is False
        assert s.bernoulli(1.5) is True

    def test_bernoulli_rate(self):
        s = RngStream(3, "bern")
        hits = sum(s.bernoulli(0.25) for _ in range(4000))
        assert 0.20 < hits / 4000 < 0.30

    def test_integers_range(self):
        s = RngStream(1)
        draws = [s.integers(2, 5) for _ in range(100)]
        assert all(2 <= d < 5 for d in draws)
        assert set(draws) == {2, 3, 4}

    def test_choice(self):
        s = RngStream(1)
        assert s.choice(["x"]) == "x"
        assert s.choice(("a", "b")) in ("a", "b")

    def test_generator_exposed(self):
        s = RngStream(1)
        arr = s.generator().random(10)
        assert arr.shape == (10,)

    def test_uniform_bounds(self):
        s = RngStream(9)
        for _ in range(100):
            v = s.uniform(2.0, 3.0)
            assert 2.0 <= v < 3.0

    def test_normal_params(self):
        s = RngStream(9, "n")
        draws = np.array([s.normal(10.0, 0.1) for _ in range(500)])
        assert 9.8 < draws.mean() < 10.2
