"""Collective tracker and cost-model tests."""


import pytest

from repro.minilang.ast_nodes import MpiOp
from repro.minilang.errors import SourceLocation
from repro.simulator.collectives import CollectiveMismatchError, CollectiveTracker
from repro.simulator.costmodel import (
    CostModel,
    MachineModel,
    NetworkModel,
    PerfCounters,
    Workload,
)

LOC = SourceLocation("t.mm", 1)


class TestCollectiveTracker:
    def test_instance_completes_when_all_arrive(self):
        tr = CollectiveTracker(3)
        for rank in range(2):
            inst, done = tr.arrive(rank, 1.0, 5, MpiOp.BARRIER, 0, 0, LOC)
            assert not done
        inst, done = tr.arrive(2, 2.0, 5, MpiOp.BARRIER, 0, 0, LOC)
        assert done
        assert inst.max_arrival == 2.0
        assert tr.completed == 1

    def test_instances_match_by_call_order(self):
        tr = CollectiveTracker(2)
        # rank 0 does two collectives before rank 1 does its first
        tr.arrive(0, 1.0, 5, MpiOp.BARRIER, 0, 0, LOC)
        tr.arrive(0, 2.0, 6, MpiOp.ALLREDUCE, 0, 8, LOC)
        inst, done = tr.arrive(1, 3.0, 5, MpiOp.BARRIER, 0, 0, LOC)
        assert done and inst.mpi_op is MpiOp.BARRIER
        inst, done = tr.arrive(1, 4.0, 6, MpiOp.ALLREDUCE, 0, 8, LOC)
        assert done and inst.mpi_op is MpiOp.ALLREDUCE

    def test_op_mismatch_raises(self):
        tr = CollectiveTracker(2)
        tr.arrive(0, 1.0, 5, MpiOp.BARRIER, 0, 0, LOC)
        with pytest.raises(CollectiveMismatchError):
            tr.arrive(1, 1.0, 5, MpiOp.ALLREDUCE, 0, 8, LOC)

    def test_root_mismatch_raises(self):
        tr = CollectiveTracker(2)
        tr.arrive(0, 1.0, 5, MpiOp.BCAST, 0, 8, LOC)
        with pytest.raises(CollectiveMismatchError):
            tr.arrive(1, 1.0, 5, MpiOp.BCAST, 1, 8, LOC)

    def test_double_arrival_raises(self):
        tr = CollectiveTracker(3)
        tr.arrive(0, 1.0, 5, MpiOp.BARRIER, 0, 0, LOC)
        with pytest.raises(CollectiveMismatchError):
            # rank 0 calling again creates instance #1 with 0's arrival; then
            # rank 0 again -> double arrival on instance #2? No: each call
            # advances the counter, so simulate by direct instance misuse.
            inst, _ = tr.arrive(1, 1.0, 5, MpiOp.BARRIER, 0, 0, LOC)
            inst.arrive(1, 2.0, 5, MpiOp.BARRIER, 0, 0, LOC)

    def test_open_instances_for_diagnostics(self):
        tr = CollectiveTracker(2)
        tr.arrive(0, 1.0, 5, MpiOp.BARRIER, 0, 0, LOC)
        assert len(tr.open_instances()) == 1


class TestWorkload:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Workload(flops=-1)

    def test_locality_clamped(self):
        assert Workload(flops=1, locality=2.0).locality == 1.0
        assert Workload(flops=1, locality=-0.5).locality == 0.0


class TestComputeCost:
    def test_time_scales_with_flops(self):
        cm = CostModel()
        t1, _ = cm.compute_cost(0, Workload(flops=1e6))
        t2, _ = cm.compute_cost(0, Workload(flops=2e6))
        assert t2 == pytest.approx(2 * t1)

    def test_memory_term_adds_time(self):
        cm = CostModel()
        t1, _ = cm.compute_cost(0, Workload(flops=1e6))
        t2, _ = cm.compute_cost(0, Workload(flops=1e6, mem_bytes=1e7))
        assert t2 > t1

    def test_poor_locality_slower_and_more_misses(self):
        cm = CostModel()
        t_good, c_good = cm.compute_cost(0, Workload(flops=1, mem_bytes=1e7, locality=1.0))
        t_bad, c_bad = cm.compute_cost(0, Workload(flops=1, mem_bytes=1e7, locality=0.0))
        assert t_bad > 4 * t_good
        assert c_bad.l2_dcm > 10 * c_good.l2_dcm

    def test_counters_shape(self):
        cm = CostModel()
        _, c = cm.compute_cost(0, Workload(flops=1000, mem_bytes=800))
        assert c.tot_ins > 1000  # flops * ins_per_flop + ld/st
        assert c.tot_lst_ins == pytest.approx(100)  # bytes/8
        assert c.tot_cyc > 0

    def test_homogeneous_ranks_identical(self):
        cm = CostModel()
        t0, _ = cm.compute_cost(0, Workload(flops=1e6))
        t5, _ = cm.compute_cost(5, Workload(flops=1e6))
        assert t0 == t5

    def test_mem_speed_sigma_creates_rank_variance(self):
        cm = CostModel(MachineModel(mem_speed_sigma=0.3), seed=1)
        times = [
            cm.compute_cost(r, Workload(flops=1, mem_bytes=1e8))[0]
            for r in range(16)
        ]
        assert max(times) / min(times) > 1.1

    def test_mem_speed_deterministic_per_seed(self):
        a = CostModel(MachineModel(mem_speed_sigma=0.3), seed=1)
        b = CostModel(MachineModel(mem_speed_sigma=0.3), seed=1)
        assert a.mem_speed(3) == b.mem_speed(3)
        c = CostModel(MachineModel(mem_speed_sigma=0.3), seed=2)
        assert a.mem_speed(3) != c.mem_speed(3)

    def test_noise_sigma_zero_is_deterministic(self):
        cm = CostModel()
        t1, _ = cm.compute_cost(0, Workload(flops=1e6))
        t2, _ = cm.compute_cost(0, Workload(flops=1e6))
        assert t1 == t2


class TestNetworkModel:
    def test_p2p_transfer_latency_plus_bandwidth(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9)
        assert net.p2p_transfer(0) == pytest.approx(1e-6)
        assert net.p2p_transfer(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_collective_single_rank_trivial(self):
        net = NetworkModel()
        assert net.collective_cost(MpiOp.ALLREDUCE, 1, 8) == net.call_overhead

    def test_collective_log_scaling(self):
        net = NetworkModel()
        c8 = net.collective_cost(MpiOp.BCAST, 8, 1024)
        c64 = net.collective_cost(MpiOp.BCAST, 64, 1024)
        assert c64 == pytest.approx(2 * c8)  # log2: 3 rounds vs 6 rounds

    def test_allreduce_twice_bcast(self):
        net = NetworkModel()
        assert net.collective_cost(MpiOp.ALLREDUCE, 16, 64) == pytest.approx(
            2 * net.collective_cost(MpiOp.BCAST, 16, 64)
        )

    def test_alltoall_linear_in_p(self):
        net = NetworkModel()
        c4 = net.collective_cost(MpiOp.ALLTOALL, 4, 1024)
        c8 = net.collective_cost(MpiOp.ALLTOALL, 8, 1024)
        assert c8 / c4 == pytest.approx(7 / 3)

    def test_barrier_latency_only(self):
        net = NetworkModel(latency=2e-6)
        assert net.collective_cost(MpiOp.BARRIER, 16, 0) == pytest.approx(8e-6)

    def test_non_collective_rejected(self):
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.collective_cost(MpiOp.SEND, 4, 8)


class TestPerfCounters:
    def test_add(self):
        a = PerfCounters(tot_ins=1, tot_cyc=2, tot_lst_ins=3, l2_dcm=4)
        b = PerfCounters(tot_ins=10, tot_cyc=20, tot_lst_ins=30, l2_dcm=40)
        c = a + b
        assert c.tot_ins == 11 and c.l2_dcm == 44
        assert a.tot_ins == 1  # original untouched

    def test_iadd(self):
        a = PerfCounters(tot_ins=1)
        a += PerfCounters(tot_ins=2)
        assert a.tot_ins == 3

    def test_scaled(self):
        a = PerfCounters(tot_ins=10, tot_cyc=10)
        assert a.scaled(0.5).tot_ins == 5

    def test_as_dict(self):
        d = PerfCounters(tot_ins=1).as_dict()
        assert set(d) == {"TOT_INS", "TOT_CYC", "TOT_LST_INS", "L2_DCM"}
