"""Detection tests: aggregation strategies, non-scalable and abnormal
vertex detectors."""

import pytest

from repro.detection import (
    AbnormalConfig,
    NonScalableConfig,
    detect_abnormal,
    detect_non_scalable,
)
from repro.detection.aggregation import (
    AggregationStrategy,
    aggregate,
    cluster_processes,
)
from repro.ppg import build_ppg
from tests.conftest import profile_source

# serial_part stays constant with P (Amdahl): non-scalable.  The barrier
# between the computes keeps them distinct vertices under contraction.
AMDAHL = """def main() {
    for (var it = 0; it < 10; it = it + 1) {
        compute(flops = 3200000000 / nprocs, name = "parallel_part");
        barrier();
        compute(flops = 100000000, name = "serial_part");
        allreduce(bytes = 8);
    }
}"""

IMBALANCED = """def main() {
    for (var it = 0; it < 10; it = it + 1) {
        compute(flops = 800000000 / nprocs + 600000000 * (1 - min(rank, 1)),
                name = "skewed");
        allreduce(bytes = 8);
    }
}"""


def ppgs_for(source, scales, params=None):
    out = []
    psg = None
    for p in scales:
        run, psg, _ = profile_source(source, p, params=params)
        out.append(build_ppg(psg, p, run.profile, run.comm))
    return out, psg


class TestAggregation:
    VALUES = [1.0, 1.0, 2.0, 10.0]

    def test_single_process(self):
        assert aggregate(self.VALUES, AggregationStrategy.SINGLE_PROCESS) == 1.0

    def test_mean(self):
        assert aggregate(self.VALUES, AggregationStrategy.MEAN) == pytest.approx(3.5)

    def test_median(self):
        assert aggregate(self.VALUES, AggregationStrategy.MEDIAN) == pytest.approx(1.5)

    def test_max(self):
        assert aggregate(self.VALUES, AggregationStrategy.MAX) == 10.0

    def test_variance_aware_above_mean(self):
        v = aggregate(self.VALUES, AggregationStrategy.VARIANCE_AWARE)
        assert v > 3.5

    def test_clustered_picks_slow_group(self):
        v = aggregate(self.VALUES, AggregationStrategy.CLUSTERED)
        assert v == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([], AggregationStrategy.MEAN)

    def test_cluster_labels_ordered_by_centroid(self):
        labels = cluster_processes([1, 1, 1, 9, 9], k=2)
        assert labels == [0, 0, 0, 1, 1]

    def test_cluster_single_value(self):
        assert cluster_processes([5.0], k=2) == [0]

    def test_cluster_identical_values(self):
        labels = cluster_processes([2.0] * 6, k=2)
        assert len(set(labels)) == 1


class TestNonScalable:
    def test_amdahl_serial_part_flagged(self):
        ppgs, psg = ppgs_for(AMDAHL, [2, 4, 8, 16])
        found = detect_non_scalable(ppgs)
        names = {psg.vertices[v.vid].name for v in found}
        assert "serial_part" in names
        serial = [v for v in found if psg.vertices[v.vid].name == "serial_part"][0]
        assert serial.slope == pytest.approx(0.0, abs=0.15)

    def test_parallel_part_not_flagged(self):
        ppgs, psg = ppgs_for(AMDAHL, [2, 4, 8, 16])
        found = detect_non_scalable(ppgs)
        names = {psg.vertices[v.vid].name for v in found}
        assert "parallel_part" not in names

    def test_scales_sorted_internally(self):
        ppgs, psg = ppgs_for(AMDAHL, [16, 2, 8, 4])
        found = detect_non_scalable(ppgs)
        assert found  # works regardless of input order
        assert found[0].scales == (2, 4, 8, 16)

    def test_needs_two_scales(self):
        ppgs, _ = ppgs_for(AMDAHL, [4])
        with pytest.raises(ValueError):
            detect_non_scalable(ppgs)

    def test_duplicate_scales_rejected(self):
        ppgs, _ = ppgs_for(AMDAHL, [4, 8])
        with pytest.raises(ValueError):
            detect_non_scalable(ppgs + [ppgs[0]])

    def test_min_time_fraction_filters(self):
        ppgs, _ = ppgs_for(AMDAHL, [2, 4, 8])
        none = detect_non_scalable(
            ppgs, NonScalableConfig(min_time_fraction=0.99)
        )
        assert none == []

    def test_top_k_limits(self):
        ppgs, _ = ppgs_for(AMDAHL, [2, 4, 8, 16])
        found = detect_non_scalable(ppgs, NonScalableConfig(top_k=1))
        assert len(found) <= 1

    def test_all_strategies_run(self):
        ppgs, _ = ppgs_for(AMDAHL, [2, 4, 8])
        for strategy in AggregationStrategy:
            detect_non_scalable(ppgs, NonScalableConfig(strategy=strategy))

    def test_fit_exposes_series(self):
        ppgs, _ = ppgs_for(AMDAHL, [2, 4, 8])
        found = detect_non_scalable(ppgs)
        for v in found:
            assert len(v.times) == 3
            assert 0 <= v.time_fraction <= 1


class TestAbnormal:
    def test_skewed_vertex_flagged_with_rank(self):
        ppgs, psg = ppgs_for(IMBALANCED, [8])
        found = detect_abnormal(ppgs[0])
        names = {psg.vertices[v.vid].name for v in found}
        assert "skewed" in names
        skewed = [v for v in found if psg.vertices[v.vid].name == "skewed"][0]
        assert skewed.abnormal_ranks[0] == 0  # rank 0 does the extra work
        assert skewed.imbalance > 1.3

    def test_balanced_program_nothing_flagged(self):
        src = """def main() {
            compute(flops = 500000000);
            allreduce(bytes = 8);
        }"""
        run, psg, _ = profile_source(src, 8)
        ppg = build_ppg(psg, 8, run.profile, run.comm)
        found = detect_abnormal(ppg)
        comp_names = {psg.vertices[v.vid].name for v in found}
        assert "test.mm:2" not in comp_names or not found

    def test_threshold_validation(self):
        ppgs, _ = ppgs_for(IMBALANCED, [4])
        with pytest.raises(ValueError):
            detect_abnormal(ppgs[0], AbnormalConfig(abnorm_thd=1.0))

    def test_higher_threshold_fewer_findings(self):
        ppgs, _ = ppgs_for(IMBALANCED, [8])
        low = detect_abnormal(ppgs[0], AbnormalConfig(abnorm_thd=1.1))
        high = detect_abnormal(ppgs[0], AbnormalConfig(abnorm_thd=5.0))
        assert len(high) <= len(low)

    def test_waiting_mpi_vertices_flagged_at_lower_threshold(self):
        # 7 of 8 ranks wait inside allreduce: the imbalance max/mean is only
        # ~8/7, below the 1.3 default — a lower AbnormThd catches it.
        ppgs, psg = ppgs_for(IMBALANCED, [8])
        default = detect_abnormal(ppgs[0])
        labels = {psg.vertices[v.vid].label for v in default}
        assert "MPI_Allreduce" not in labels
        low = detect_abnormal(ppgs[0], AbnormalConfig(abnorm_thd=1.05))
        labels_low = {psg.vertices[v.vid].label for v in low}
        assert "MPI_Allreduce" in labels_low

    def test_sorted_by_severity(self):
        ppgs, _ = ppgs_for(IMBALANCED, [8])
        found = detect_abnormal(ppgs[0])
        scores = [v.imbalance * v.mean_time for v in found]
        assert scores == sorted(scores, reverse=True)
