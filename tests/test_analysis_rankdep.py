"""Unit tests of the whole-program rank-dependence dataflow.

Covers the verdict lattice (CONST < INVARIANT < AFFINE < DEPENDENT), the
const-statement extraction the cross-rank op sharing relies on, the
symbolic-term evaluator's exact interpreter semantics, and the soundness
degradations (rank-dependent ``while``, recursion, tainting merges).
"""

import pytest

from repro.analysis import Rankness, analyze_program, eval_term
from repro.minilang import parse_program
from repro.minilang.ast_nodes import MpiOp, MpiStmt, walk_statements
from repro.simulator.errors import SimulationError


def _analyze(source, nprocs=8, params=None, **kw):
    program = parse_program(source, "t.mm")
    return program, analyze_program(program, nprocs, params, **kw)


def _mpi_stmts(program, op=None):
    out = []
    for fn in program.functions.values():
        for stmt in walk_statements(fn.body):
            if isinstance(stmt, MpiStmt) and (op is None or stmt.op is op):
                out.append(stmt)
    return out


class TestVerdicts:
    def test_constant_args_are_const_stmts(self):
        program, analysis = _analyze(
            """
            def main() {
                for (var i = 0; i < 3; i = i + 1) {
                    allreduce(bytes = 8);
                }
            }
            """
        )
        (coll,) = _mpi_stmts(program)
        assert analysis.classify_stmt(coll.stmt_id) is Rankness.CONST
        assert coll.stmt_id in analysis.const_stmts
        assert analysis.degraded is None

    def test_params_fold_to_const(self):
        program, analysis = _analyze(
            """
            def main() {
                allreduce(bytes = 8 * n);
            }
            """,
            params={"n": 64},
        )
        (coll,) = _mpi_stmts(program)
        assert coll.stmt_id in analysis.const_stmts

    def test_ring_neighbor_is_affine_not_const(self):
        program, analysis = _analyze(
            """
            def main() {
                sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 64,
                         src = (rank - 1 + nprocs) % nprocs);
            }
            """
        )
        (sr,) = _mpi_stmts(program)
        assert analysis.classify_stmt(sr.stmt_id) is Rankness.AFFINE
        assert sr.stmt_id not in analysis.const_stmts
        dest_av = analysis.verdict_of(sr.dest)
        assert dest_av.kind is Rankness.AFFINE
        # the symbolic term reproduces the concrete neighbor for every rank
        assert [eval_term(dest_av.term, r) for r in range(8)] == [
            (r + 1) % 8 for r in range(8)
        ]

    def test_rank_split_assignment_is_tainted_but_keeps_a_term(self):
        # x differs across ranks after the merge: it must NOT be
        # invariant; the sel-term rescue still gives it a rank function
        program, analysis = _analyze(
            """
            def main() {
                var x = 1;
                if (rank < 2) {
                    x = 2;
                }
                send(dest = x, tag = 0, bytes = 8);
                recv(src = ANY, tag = ANY);
            }
            """,
            nprocs=4,
        )
        send = _mpi_stmts(program, MpiOp.SEND)[0]
        av = analysis.verdict_of(send.dest)
        assert av.kind not in (Rankness.CONST, Rankness.INVARIANT)
        assert av.term is not None
        assert [eval_term(av.term, r) for r in range(4)] == [2, 2, 1, 1]

    def test_invariant_branch_does_not_taint(self):
        program, analysis = _analyze(
            """
            def main() {
                var x = 1;
                if (nprocs > 2) {
                    x = 2;
                }
                allreduce(bytes = x);
            }
            """
        )
        (coll,) = _mpi_stmts(program)
        # all ranks take the same arm, so x is the same everywhere
        assert analysis.classify_stmt(coll.stmt_id) is Rankness.CONST

    def test_recursion_is_pessimistic(self):
        program, analysis = _analyze(
            """
            def ping(depth) {
                if (depth > 0) {
                    allreduce(bytes = 8);
                    ping(depth - 1);
                }
            }
            def main() {
                ping(3);
            }
            """
        )
        (coll,) = _mpi_stmts(program)
        # recursive bodies are analyzed with all params DEPENDENT; the
        # collective's byte count is still literally constant, which is
        # exactly what op sharing needs
        assert coll.stmt_id in analysis.const_stmts
        assert analysis.degraded is None


class TestDeciders:
    def test_rank_dependent_branch_is_a_decider(self):
        program, analysis = _analyze(
            """
            def main() {
                if (rank == 0) {
                    allreduce(bytes = 8);
                } else {
                    allreduce(bytes = 8);
                }
            }
            """
        )
        assert analysis.degraded is None
        (decider,) = analysis.deciders.values()
        assert decider.kind == "branch"
        assert decider.av.term is not None
        assert [bool(eval_term(decider.av.term, r)) for r in range(4)] == [
            True, False, False, False,
        ]

    def test_countable_rank_for_is_a_loop_decider(self):
        program, analysis = _analyze(
            """
            def main() {
                for (var i = 0; i < rank + 1; i = i + 1) {
                    allreduce(bytes = 8);
                }
            }
            """
        )
        assert analysis.degraded is None
        (decider,) = analysis.deciders.values()
        assert decider.kind == "loop"
        assert [eval_term(decider.av.term, r) for r in range(4)] == [1, 2, 3, 4]

    def test_rank_dependent_while_degrades(self):
        _, analysis = _analyze(
            """
            def main() {
                var s = rank;
                while (s > 0) {
                    allreduce(bytes = 8);
                    s = s - 1;
                }
            }
            """
        )
        assert analysis.degraded is not None

    def test_silent_rank_branch_is_not_a_decider(self):
        # the arms emit no ops: the decision is unobservable and must not
        # block symmetry detection
        _, analysis = _analyze(
            """
            def main() {
                var x = 0;
                if (rank == 0) {
                    x = 1;
                }
                allreduce(bytes = 8);
            }
            """
        )
        assert analysis.degraded is None
        assert not analysis.deciders


class TestEvalTerm:
    def test_c_style_integer_division(self):
        assert eval_term(("bin", "/", ("const", 7), ("const", -2)), 0) == -3
        assert eval_term(("bin", "/", ("const", -7), ("const", 2)), 0) == -3

    def test_division_by_zero_raises_simulation_error(self):
        with pytest.raises(SimulationError):
            eval_term(("bin", "/", ("rank",), ("const", 0)), 1)
        with pytest.raises(SimulationError):
            eval_term(("bin", "%", ("const", 3), ("const", 0)), 0)

    def test_short_circuit_logic(self):
        term = ("bin", "&&", ("const", 0), ("bin", "/", ("const", 1), ("const", 0)))
        assert eval_term(term, 0) == 0  # RHS never evaluated


class TestTotality:
    def test_analyze_never_raises_on_apps(self):
        from repro.apps import APPS, get_app

        for name in APPS:
            app = get_app(name)
            nprocs = next(n for n in (8, 9, 16) if app.nprocs_valid(n))
            analysis = analyze_program(app.program, nprocs, app.params)
            assert analysis.nprocs == nprocs
