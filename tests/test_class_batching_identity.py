"""Class-batched simulation is bit-identical to per-rank interpretation.

The per-rank interpreter is the bit-identity oracle: with
``sim_class_batching`` on, every rank of a proven behavioral equivalence
class consumes an op stream fanned out from its class representative —
and nothing observable may change.  Mirrors the class-sharing identity
gate: same randomized workloads, fingerprints plus canonical detection
reports, serial and sharded, both executors, both schedulers.  The
adversarial section additionally pins the *fallback* behavior: workloads
engineered to defeat batching (wildcard receives inside a symmetric
phase, a single rank diverging late) must take the per-rank path — the
fallback counter says so — and still match the oracle exactly.
"""

import random

import pytest

from repro.api import AnalysisConfig, Pipeline
from repro.api.config import canonical_json
from repro.simulator import SimulationConfig, simulate
from tests.conftest import IMBALANCED_SOURCE
from tests.test_scheduler_identity import _compiled, _fingerprint, make_workload


def _batch_counters(result) -> dict:
    return {
        k.rsplit(".", 1)[1]: v
        for k, v in result.metrics.counters.items()
        if k.startswith("sim.class_batch.")
    }


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", range(1, 100, 4))
    def test_batching_matches_per_rank_oracle(self, seed):
        source = make_workload(seed)
        rng = random.Random(30_000 + seed)
        nprocs = rng.randint(5, 9)
        program, psg = _compiled(source, f"batch{seed}")
        oracle = _fingerprint(program, psg, nprocs, sim_class_batching=False)
        batched = _fingerprint(program, psg, nprocs, sim_class_batching=True)
        assert batched == oracle, f"serial divergence on seed {seed}"
        sharded = _fingerprint(
            program, psg, nprocs,
            sim_class_batching=True,
            sim_shards=rng.randint(2, 4), sim_executor="inprocess",
        )
        assert sharded == oracle, f"sharded divergence on seed {seed}"

    @pytest.mark.parametrize("seed", [5, 41, 77])
    def test_process_executor_and_both_schedulers(self, seed):
        source = make_workload(seed)
        program, psg = _compiled(source, f"batchmp{seed}")
        oracle = _fingerprint(program, psg, 6, sim_class_batching=False)
        for scheduler in ("heap", "calendar"):
            for extra in (
                {},
                dict(sim_shards=2, sim_executor="process"),
            ):
                fp = _fingerprint(
                    program, psg, 6,
                    sim_class_batching=True, sim_scheduler=scheduler, **extra,
                )
                assert fp == oracle, (seed, scheduler, extra)


#: Fully symmetric ring exchange: one equivalence class, every field of
#: every op either invariant or affine in rank — the canonical batch hit.
SYMMETRIC_RING = """\
def main() {
    for (var it = 0; it < 4; it = it + 1) {
        compute(flops = 40000 + 1000 * it);
        sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 512,
                 src = (rank - 1 + nprocs) % nprocs);
    }
    allreduce(bytes = 8);
}
"""

#: A wildcard receive inside a perfectly symmetric phase: every rank runs
#: the identical statement sequence (one equivalence class), but ANY-src
#: matching is arrival-order dependent, so the template check must refuse
#: the whole class — batching a wildcard would bake in one arrival order.
#: (PR 10: with ``sim_wildcard_devirt`` on, the match-order analysis
#: proves this ring deterministic and the rewritten concrete-source
#: stream batches after all — both behaviors are asserted below.)
WILDCARD_IN_SYMMETRIC_PHASE = """\
def main() {
    for (var it = 0; it < 3; it = it + 1) {
        compute(flops = 10000);
        send(dest = (rank + 1) % nprocs, tag = 3, bytes = 64);
        recv(src = ANY, tag = 3);
    }
    barrier();
}
"""

#: Every rank runs the same symmetric loop, then exactly one rank takes a
#: divergent late branch — the symmetry partition must split it out (or
#: degrade), never batch it with the others.
ONE_RANK_DIVERGES_LATE = """\
def main() {
    for (var it = 0; it < 3; it = it + 1) {
        compute(flops = 30000);
        sendrecv(dest = (rank + 1) % nprocs, tag = 2, bytes = 256,
                 src = (rank - 1 + nprocs) % nprocs);
    }
    if (rank == nprocs - 1) {
        compute(flops = 999999);
        compute(flops = hashrand(rank, 7) * 1000 + 1000);
    }
    barrier();
}
"""


class TestBatchingEngages:
    def test_symmetric_ring_batches_every_rank(self):
        """Meta-check: the identity gate is not vacuous — a symmetric app
        really takes the batched path for all ranks."""
        program, psg = _compiled(SYMMETRIC_RING, "symring")
        res = simulate(program, psg, SimulationConfig(nprocs=16))
        stats = _batch_counters(res)
        assert stats["classes"] >= 1
        assert stats["ranks_batched"] == 16
        assert stats["fallbacks"] == 0

    def test_oracle_run_reports_zero_batching(self):
        program, psg = _compiled(SYMMETRIC_RING, "symring_off")
        res = simulate(
            program, psg,
            SimulationConfig(nprocs=16, sim_class_batching=False),
        )
        stats = _batch_counters(res)
        assert stats["classes"] == 0
        assert stats["ranks_batched"] == 0

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=2, sim_class_batching="on")
        with pytest.raises(ValueError):
            AnalysisConfig(sim_class_batching=1)


class TestAdversarialFallback:
    def test_wildcard_recv_in_symmetric_phase_falls_back(self):
        """With devirtualization disabled, a wildcard receive never rides
        a template (batching one would bake in an arrival order)."""
        program, psg = _compiled(WILDCARD_IN_SYMMETRIC_PHASE, "wildsym")
        oracle = _fingerprint(program, psg, 8, sim_class_batching=False)
        assert _fingerprint(
            program, psg, 8, sim_wildcard_devirt=False
        ) == oracle
        res = simulate(
            program, psg,
            SimulationConfig(nprocs=8, sim_wildcard_devirt=False),
        )
        stats = _batch_counters(res)
        # The class containing the wildcard must fall back wholesale —
        # an undevirtualized wildcard receive never rides a template.
        assert stats["fallbacks"] >= 1
        assert stats["ranks_batched"] == 0

    def test_devirt_lifts_the_wildcard_refusal(self):
        """PR 10: the match-order analysis proves this ring's wildcard
        deterministic, so with devirtualization on (the default) the same
        phase batches — bit-identically to the per-rank oracle."""
        program, psg = _compiled(WILDCARD_IN_SYMMETRIC_PHASE, "wildsymdv")
        oracle = _fingerprint(program, psg, 8, sim_class_batching=False)
        assert _fingerprint(program, psg, 8) == oracle
        res = simulate(program, psg, SimulationConfig(nprocs=8))
        stats = _batch_counters(res)
        assert stats["fallbacks"] == 0
        assert stats["ranks_batched"] == 8

    def test_one_rank_diverging_late_is_never_batched_in(self):
        program, psg = _compiled(ONE_RANK_DIVERGES_LATE, "lonediv")
        oracle = _fingerprint(program, psg, 8, sim_class_batching=False)
        assert _fingerprint(program, psg, 8) == oracle
        res = simulate(program, psg, SimulationConfig(nprocs=8))
        stats = _batch_counters(res)
        # rank nprocs-1 executes extra statements (one with a value the
        # analysis cannot close over rank) — it must stay per-rank.
        assert stats["ranks_batched"] < 8

    def test_fallback_reasons_surface_on_engine(self):
        """The engine records why classes degraded (bounded, deduplicated)
        so bench and debug tooling can explain a batch miss."""
        from repro.psg import build_psg
        from repro.minilang.parser import parse_program
        from repro.simulator.engine import Engine

        program = parse_program(WILDCARD_IN_SYMMETRIC_PHASE, "wildsym.mm")
        psg = build_psg(program).psg
        engine = Engine(
            program, psg,
            SimulationConfig(nprocs=8, sim_wildcard_devirt=False),
        )
        engine.run()
        assert engine.class_batch_stats["fallbacks"] >= 1
        assert engine.class_batch_reasons
        assert all(isinstance(r, str) for r in engine.class_batch_reasons)


class TestCanonicalReport:
    def test_report_sha_identical_with_and_without_batching(self):
        reports = {}
        for flag in (False, True):
            pipeline = Pipeline(
                source=IMBALANCED_SOURCE, filename="imbalanced.mm",
                config=AnalysisConfig(seed=0, sim_class_batching=flag),
            )
            doc = pipeline.run([4, 8, 16]).report.to_json_dict()
            doc["detection_seconds"] = 0.0
            reports[flag] = canonical_json(doc)
        assert reports[True] == reports[False]

    def test_batching_is_digest_neutral(self):
        base = AnalysisConfig(seed=0)
        off = AnalysisConfig(seed=0, sim_class_batching=False)
        assert base.digest() == off.digest()
        assert AnalysisConfig.from_json(off.to_json()) == off
        # pre-knob documents load with the default
        import json

        doc = json.loads(base.to_json())
        doc.pop("sim_class_batching", None)
        assert AnalysisConfig.from_dict(doc).sim_class_batching is True
