"""Columnar communication ground truth: tables, views, and the vectorized
collection path.

The contract under test mirrors PR 3's Mailbox reference test: the
historical object-walking ``collect_comm_dependence`` is kept here verbatim
as the behavioural oracle, and the vectorized column-reading implementation
must reproduce it bit for bit — edges, stats, groups, laggards, sampled
subsets at ``sample_probability < 1`` — over randomized workloads, serial
and sharded.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang import parse_program
from repro.psg import build_psg
from repro.runtime import collect_comm_dependence
from repro.runtime.interposition import (
    CommDependence,
    CommEdge,
    CollectiveGroup,
    _RequestConverter,
)
from repro.simulator import (
    CollectiveTable,
    P2PTable,
    SimulationConfig,
    WILDCARD_CODE,
    simulate,
)
from repro.util.rng import derive_seed


def _run(source, nprocs, **cfg):
    program = parse_program(source, "prop.mm")
    psg = build_psg(program).psg
    return simulate(program, psg, SimulationConfig(nprocs=nprocs, **cfg))


# ----------------------------------------------------------------------
# the reference implementation (pre-columnar, object-walking), verbatim
# ----------------------------------------------------------------------


def reference_collect(result, *, sample_probability=1.0, seed=0):
    """The historical per-record loop over ``P2PRecord`` objects.

    Kept as the oracle for the vectorized path: any divergence on any
    workload — values *or* dict insertion order — is a columnarization
    bug.  The in-loop request-converter equivalence ``assert`` of the old
    code lives in :class:`TestRequestConverter` now.
    """
    threshold = sample_probability * float(2**63)

    def keep(*key):
        return derive_seed(seed, "comm_sampling", *key) < threshold

    dep = CommDependence()
    for rec in result.p2p_records:
        dep.observed_events += 1
        if sample_probability < 1.0 and not keep(
            "p2p", rec.send_rank, rec.send_vid, rec.recv_rank,
            rec.recv_vid, rec.tag, rec.nbytes, rec.send_time, rec.recv_post,
        ):
            continue
        dep.recorded_events += 1
        edge = CommEdge(
            send_rank=rec.send_rank,
            send_vid=rec.send_vid,
            recv_rank=rec.recv_rank,
            recv_vid=rec.recv_vid,
            wait_vid=rec.wait_vid,
            tag=rec.tag,
            nbytes=rec.nbytes,
        )
        key = edge.key()
        count, max_wait = dep.edge_stats.get(key, (0, 0.0))
        dep.edges[key] = edge
        dep.edge_stats[key] = (count + 1, max(max_wait, rec.wait_time))

    for crec in result.collective_records:
        dep.observed_events += 1
        if sample_probability < 1.0 and not keep("collective", crec.index):
            continue
        dep.recorded_events += 1
        group = CollectiveGroup(
            mpi_op=crec.mpi_op,
            root=crec.root,
            nbytes=crec.nbytes,
            vids=tuple(sorted(crec.vids.items())),
        )
        key = group.key()
        count, max_wait, laggard = dep.group_stats.get(key, (0, 0.0, -1))
        worst = max(crec.wait_of(r) for r in crec.arrivals)
        if worst >= max_wait:
            laggard = crec.last_arrival_rank
        dep.groups[key] = group
        dep.group_stats[key] = (count + 1, max(max_wait, worst), laggard)

    for note in result.indirect_notes:
        key = (note.inline_path, note.stmt_id)
        dep.indirect_targets.setdefault(key, set()).add(note.target)

    return dep


def assert_dependence_identical(got, want):
    """Bit-identity including dict insertion order and value types."""
    assert list(got.edges) == list(want.edges)
    assert got.edges == want.edges
    assert list(got.edge_stats) == list(want.edge_stats)
    assert repr(got.edge_stats) == repr(want.edge_stats)
    assert list(got.groups) == list(want.groups)
    assert got.groups == want.groups
    assert list(got.group_stats) == list(want.group_stats)
    assert repr(got.group_stats) == repr(want.group_stats)
    assert got.observed_events == want.observed_events
    assert got.recorded_events == want.recorded_events
    assert got.indirect_targets == want.indirect_targets


# ----------------------------------------------------------------------
# randomized workloads
# ----------------------------------------------------------------------

_RING = """\
    for (var it{i} = 0; it{i} < {iters}; it{i} = it{i} + 1) {{
        compute(flops = {flops} + {stagger} * rank);
        sendrecv(dest = (rank + 1) % nprocs, tag = {tag}, bytes = {nbytes},
                 src = (rank - 1 + nprocs) % nprocs);
    }}
"""

_GATHER_WILD = """\
    if (rank == 0) {{
        for (var g{i} = 1; g{i} < nprocs; g{i} = g{i} + 1) {{
            recv(src = ANY, tag = {tag});
        }}
    }} else {{
        compute(flops = {flops} + {stagger} * rank);
        send(dest = 0, tag = {tag}, bytes = {nbytes});
    }}
"""

_IRECV_WILD = """\
    for (var w{i} = 0; w{i} < {iters}; w{i} = w{i} + 1) {{
        compute(flops = {flops} + {stagger} * rank);
        if (rank == 0) {{
            for (var j{i} = 1; j{i} < nprocs; j{i} = j{i} + 1) {{
                irecv(src = ANY, tag = ANY, req = r{i});
            }}
            waitall();
        }} else {{
            send(dest = 0, tag = rank, bytes = {nbytes});
        }}
    }}
"""

_ISEND_RING = """\
    for (var p{i} = 0; p{i} < {iters}; p{i} = p{i} + 1) {{
        compute(flops = {flops} + {stagger} * (rank % 3));
        isend(dest = (rank + 1) % nprocs, tag = {tag}, bytes = {nbytes}, req = s{i});
        irecv(src = (rank - 1 + nprocs) % nprocs, tag = {tag}, req = q{i});
        waitall();
    }}
"""

_COLLECTIVES = """\
    for (var c{i} = 0; c{i} < {iters}; c{i} = c{i} + 1) {{
        compute(flops = {flops} + {stagger} * (rank % 4));
        allreduce(bytes = {nbytes});
        bcast(root = 0, bytes = {nbytes});
    }}
"""

_UNWAITED_IRECV = """\
    if (rank == 0) {{
        irecv(src = 1, tag = {tag}, req = u{i});
    }}
    if (rank == 1) {{
        send(dest = 0, tag = {tag}, bytes = {nbytes});
    }}
    barrier();
"""

_PHASES = [
    _RING, _GATHER_WILD, _IRECV_WILD, _ISEND_RING, _COLLECTIVES,
    _UNWAITED_IRECV,
]


@st.composite
def workloads(draw, staggered_wildcards=False):
    """A random MiniMPI program from deadlock-free phase templates, plus a
    process count — the randomized-workload space of the equivalence
    property (tags, sizes, staggers and phase mixes all vary).

    ``staggered_wildcards=True`` forces a nonzero per-rank compute stagger
    in the wildcard templates, keeping the program inside the sharded
    bit-identity guarantee: distinct senders racing one ANY-source receive
    at *exactly* equal times are MPI-ambiguous, and sharded runs tie-break
    canonically rather than by the serial engine's emergent heap order
    (the PR-3 carve-out pinned by test_parallel_sim)."""
    nprocs = draw(st.integers(min_value=2, max_value=6))
    nphases = draw(st.integers(min_value=1, max_value=3))
    body = []
    for i in range(nphases):
        template = draw(st.sampled_from(_PHASES))
        staggers = [0, 7000, 31000]
        if staggered_wildcards and template in (_GATHER_WILD, _IRECV_WILD):
            staggers = [7000, 31000]
        body.append(
            template.format(
                i=i,
                iters=draw(st.integers(1, 3)),
                flops=draw(st.sampled_from([20000, 50000, 120000])),
                stagger=draw(st.sampled_from(staggers)),
                tag=draw(st.integers(0, 4)),
                nbytes=draw(st.sampled_from([8, 256, 4096])),
            )
        )
    # Barrier-separated phases: an ANY/ANY wildcard phase would otherwise
    # steal a later phase's differently-tagged sends (deadlock); the
    # barrier means later sends cannot exist until the phase drained.
    source = "def main() {\n" + "    barrier();\n".join(body) + "}\n"
    return source, nprocs


class TestVectorizedCollectionEquivalence:
    """Vectorized column path == historical object walk, bit for bit."""

    @settings(max_examples=200, deadline=None)
    @given(workloads(), st.sampled_from([1.0, 0.65, 0.3]),
           st.integers(0, 5))
    def test_matches_reference(self, workload, probability, seed):
        source, nprocs = workload
        result = _run(source, nprocs)
        got = collect_comm_dependence(
            result, sample_probability=probability, seed=seed
        )
        want = reference_collect(
            result, sample_probability=probability, seed=seed
        )
        assert_dependence_identical(got, want)

    @settings(max_examples=25, deadline=None)
    @given(workloads(staggered_wildcards=True), st.sampled_from([1.0, 0.5]))
    def test_sharded_matches_reference_serial(self, workload, probability):
        """A sharded run's merged tables collect to the same dependence the
        serial reference walk produces (record order diverges; content
        draws and key grouping make the result order-insensitive)."""
        source, nprocs = workload
        serial = _run(source, nprocs)
        sharded = _run(
            source, nprocs, sim_shards=2, sim_executor="inprocess"
        )
        got = collect_comm_dependence(
            sharded, sample_probability=probability, seed=1
        )
        want = reference_collect(
            serial, sample_probability=probability, seed=1
        )
        # sharded record order differs, so compare order-insensitively
        assert got.edges == want.edges
        assert got.edge_stats == want.edge_stats
        assert got.groups == want.groups
        assert got.group_stats == want.group_stats
        assert got.recorded_events == want.recorded_events
        assert got.indirect_targets == want.indirect_targets


WILDCARD_HEAVY = """\
def main() {
    for (var it = 0; it < 5; it = it + 1) {
        compute(flops = 40000 + 9000 * rank);
        if (rank == 0) {
            for (var i = 1; i < nprocs; i = i + 1) {
                irecv(src = ANY, tag = ANY, req = r);
            }
            waitall();
        } else {
            send(dest = 0, tag = 2 + rank % 3, bytes = 64 * rank);
        }
        if (rank == 1) {
            recv(src = ANY, tag = 9);
        }
        if (rank == 2) {
            send(dest = 1, tag = 9, bytes = 32);
        }
        barrier();
    }
}
"""


class TestRequestConverter:
    """The Fig. 5 request-converter equivalence, moved out of the
    collection hot loop (where it was a bare ``assert`` that ``python -O``
    silently dropped) into a dedicated test over wildcard-heavy traffic."""

    @pytest.mark.parametrize("nprocs", [4, 7])
    def test_resolves_to_matched_message_values(self, nprocs):
        result = _run(WILDCARD_HEAVY, nprocs)
        records = list(result.p2p_records)
        wildcards = [r for r in records if r.declared_src is None]
        assert wildcards, "workload must exercise MPI_ANY_SOURCE"
        assert any(r.declared_tag is None for r in records)
        converter = _RequestConverter()
        for rec_id, rec in enumerate(records):
            converter.on_irecv(rec_id, rec.declared_src, rec.declared_tag)
            src, tag = converter.on_wait(rec_id, rec.send_rank, rec.tag)
            # declared ints pass through; wildcards resolve from "status"
            assert src == rec.send_rank
            assert tag == rec.tag

    def test_fully_declared_values_win_over_status(self):
        converter = _RequestConverter()
        converter.on_irecv(0, 3, 7)
        assert converter.on_wait(0, 99, 99) == (3, 7)
        # unknown record id: everything from status
        assert converter.on_wait(1, 5, 6) == (5, 6)


class TestP2PTable:
    def test_append_and_row_roundtrip(self):
        table = P2PTable()
        row = table.append(1, 2, 3, 4, 5, 6, 7, WILDCARD_CODE, 9,
                           0.5, 1.5, 0.25, 2.5, 0.75)
        assert row == 0
        rec = table.row(0)
        assert (rec.send_rank, rec.send_vid, rec.recv_rank, rec.recv_vid,
                rec.wait_vid, rec.tag, rec.nbytes) == (1, 2, 3, 4, 5, 6, 7)
        assert rec.declared_src is None  # wildcard sentinel decodes to None
        assert rec.declared_tag == 9
        assert (rec.send_time, rec.arrival, rec.recv_post, rec.completion,
                rec.wait_time) == (0.5, 1.5, 0.25, 2.5, 0.75)

    def test_set_wait_reaches_sealed_chunks(self):
        table = P2PTable()
        rows = [
            table.append(0, 0, 1, 1, -1, 0, 8, 0, 0,
                         float(i), float(i), float(i), float("nan"), 0.0)
            for i in range(5)
        ]
        table.seal()  # rows 0..4 now live in a sealed chunk
        late = table.append(0, 0, 1, 1, -1, 0, 8, 0, 0,
                            9.0, 9.0, 9.0, float("nan"), 0.0)
        table.set_wait(rows[2], 42.0, 17, 1.25)  # sealed row
        table.set_wait(late, 43.0, 18, 2.5)  # pending row
        assert table.row(2).completion == 42.0
        assert table.row(2).wait_vid == 17
        assert table.row(2).wait_time == 1.25
        assert table.row(late).completion == 43.0
        assert table.row(late).wait_vid == 18
        assert math.isnan(table.row(0).completion)

    def test_merge_concatenates_in_part_order(self):
        parts = []
        for base in (0, 10):
            t = P2PTable()
            for i in range(3):
                t.append(base + i, 0, 0, 0, -1, 0, 8, 0, 0,
                         0.0, 0.0, 0.0, 0.0, 0.0)
            parts.append(t)
        merged = P2PTable.merge(parts)
        assert merged.row_count == 6
        assert [r.send_rank for r in merged.records()] == [0, 1, 2, 10, 11, 12]

    def test_doc_roundtrip_preserves_nan_and_sentinels(self):
        table = P2PTable()
        table.append(1, 2, 3, 4, -1, 5, 6, WILDCARD_CODE, WILDCARD_CODE,
                     0.125, 0.25, 0.5, float("nan"), 0.0)
        back = P2PTable.from_doc(table.to_doc())
        assert back.row_count == 1
        rec = back.row(0)
        assert rec.declared_src is None and rec.declared_tag is None
        assert math.isnan(rec.completion)
        assert rec.send_time == 0.125

    def test_records_view_sequence_protocol(self):
        result = _run(WILDCARD_HEAVY, 4)
        view = result.p2p_records
        records = list(view)
        assert len(view) == len(records) > 0
        assert view[0] == records[0]
        assert view[-1] == records[-1]
        assert view[1:3] == records[1:3]
        assert view == records  # equality against a plain list
        with pytest.raises(IndexError):
            view[len(view)]


class TestCollectiveTable:
    def test_engine_rows_match_views(self):
        result = _run(WILDCARD_HEAVY, 5)
        table = result.trace.collectives
        cols = table.columns()
        assert table.row_count == len(result.collective_records) == 5
        # ragged participant layout: every barrier has all 5 ranks
        assert np.array_equal(
            np.diff(cols["offsets"]), np.full(5, 5, dtype=np.int64)
        )
        rec = table.row(0)
        assert rec.arrivals.keys() == rec.completions.keys() == rec.vids.keys()
        assert rec.wait_of(rec.last_arrival_rank) >= 0.0

    def test_doc_roundtrip(self):
        result = _run(WILDCARD_HEAVY, 4)
        table = result.trace.collectives
        back = CollectiveTable.from_doc(table.to_doc())
        assert back.row_count == table.row_count
        for a, b in zip(back.records(), table.records()):
            assert a == b

    def test_merge_offsets(self):
        result = _run(WILDCARD_HEAVY, 4)
        table = result.trace.collectives
        merged = CollectiveTable.merge([table, CollectiveTable(), table])
        assert merged.row_count == 2 * table.row_count
        assert list(merged.records())[table.row_count:] == list(table.records())


class TestTraceBufferOwnership:
    def test_trace_doc_roundtrips_comm_tables(self):
        result = _run(WILDCARD_HEAVY, 4)
        from repro.simulator import TraceBuffer

        back = TraceBuffer.from_doc(result.trace.to_doc())
        assert back.p2p.records() == result.p2p_records
        assert back.collectives.records() == result.collective_records

    def test_pre_table_docs_still_load(self):
        result = _run(WILDCARD_HEAVY, 4)
        from repro.simulator import TraceBuffer

        doc = result.trace.to_doc()
        del doc["p2p"], doc["collectives"]  # a PR-2-era document
        back = TraceBuffer.from_doc(doc)
        assert back.event_count == result.trace.event_count
        assert back.p2p.row_count == 0
        assert back.collectives.row_count == 0

    def test_collection_from_reloaded_trace_matches(self):
        """Comm-dependence collection re-runs identically from a
        round-tripped trace document (the post-mortem path)."""
        from dataclasses import replace
        from repro.simulator import TraceBuffer

        result = _run(WILDCARD_HEAVY, 4)
        reloaded = replace(result, trace=TraceBuffer.from_doc(result.trace.to_doc()))
        got = collect_comm_dependence(reloaded)
        want = collect_comm_dependence(result)
        assert_dependence_identical(got, want)
