"""Session artifact cache: hit/miss accounting, the zero-simulation
contract, invalidation on config change, persistence, and sweeps."""

import pytest

from repro.api import Session, run_fingerprint
from repro.apps import get_app
from repro.simulator import simulation_call_count

SOURCE = """\
def main() {
    for (var i = 0; i < 6; i = i + 1) {
        compute(flops = 10000000 / nprocs, name = "work");
        allreduce(bytes = 8);
    }
}
"""


class TestCacheHitMiss:
    def test_first_analysis_misses_then_hits(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        pipe = session.pipeline(SOURCE, seed=1)
        first = pipe.profile_scales([4, 8])
        assert [a.cached for a in first] == [False, False]
        assert session.stats.misses == 2 and session.stats.hits == 0

        again = session.pipeline(SOURCE, seed=1).profile_scales([4, 8])
        assert [a.cached for a in again] == [True, True]
        assert session.stats.hits == 2
        for a, b in zip(first, again):
            assert run_fingerprint(a.run) == run_fingerprint(b.run)

    def test_cache_hit_performs_zero_simulations(self, tmp_path):
        """The acceptance contract: a cached re-analysis of a registry app
        (same source + config + scale) simulates nothing."""
        session = Session(cache_dir=tmp_path / "cache")
        app = get_app("cg")
        session.analyze(app, [4, 8], seed=3)

        before = simulation_call_count()
        result = session.analyze(app, [4, 8], seed=3)
        assert simulation_call_count() == before  # zero new simulations
        assert result.report.nprocs == 8

    def test_memory_only_session_caches_too(self):
        session = Session()  # no cache_dir
        pipe = session.pipeline(SOURCE, seed=1)
        pipe.profile_scales([4])
        before = simulation_call_count()
        art = pipe.profile(4)
        assert art.cached
        assert simulation_call_count() == before


class TestInvalidation:
    def test_any_config_change_is_a_miss(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        session.pipeline(SOURCE, seed=1).profile(4)
        before = simulation_call_count()
        art = session.pipeline(SOURCE, seed=2).profile(4)  # seed changed
        assert not art.cached
        assert simulation_call_count() == before + 1

    def test_source_change_is_a_miss(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        session.pipeline(SOURCE, seed=1).profile(4)
        changed = SOURCE.replace("6", "7")
        assert not session.pipeline(changed, seed=1).profile(4).cached

    def test_scale_change_is_a_miss(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        session.pipeline(SOURCE, seed=1).profile(4)
        assert not session.pipeline(SOURCE, seed=1).profile(8).cached

    def test_corrupt_artifact_is_a_miss_not_an_error(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        pipe = session.pipeline(SOURCE, seed=1)
        pipe.profile(4)
        victim = next((tmp_path / "cache").rglob("profile_p4.json"))
        victim.write_text("garbage")
        art = Session(cache_dir=tmp_path / "cache").pipeline(
            SOURCE, seed=1
        ).profile(4)
        assert not art.cached  # re-simulated, no crash
        assert not victim.exists() or victim.read_text() != "garbage"

    def test_explicit_invalidate(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        pipe = session.pipeline(SOURCE, seed=1)
        pipe.profile(4)
        dropped = session.invalidate(source_digest=pipe.source_digest)
        assert dropped == 1
        assert not pipe.profile(4).cached  # re-simulated

    def test_invalidate_other_program_keeps_entries(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        pipe = session.pipeline(SOURCE, seed=1)
        pipe.profile(4)
        assert session.invalidate(source_digest="0" * 16) == 0
        assert pipe.profile(4).cached


class TestPersistence:
    def test_cache_survives_across_sessions(self, tmp_path):
        cache = tmp_path / "cache"
        Session(cache_dir=cache).pipeline(SOURCE, seed=1).profile_scales([4, 8])

        fresh = Session(cache_dir=cache)  # new process, simulated
        before = simulation_call_count()
        arts = fresh.pipeline(SOURCE, seed=1).profile_scales([4, 8])
        assert [a.cached for a in arts] == [True, True]
        assert simulation_call_count() == before

    def test_loaded_artifact_detects_identically(self, tmp_path):
        cache = tmp_path / "cache"
        session = Session(cache_dir=cache)
        pipe = session.pipeline(SOURCE, seed=1)
        live = pipe.detect(pipe.profile_scales([4, 8]))

        fresh_pipe = Session(cache_dir=cache).pipeline(SOURCE, seed=1)
        loaded = fresh_pipe.detect(fresh_pipe.profile_scales([4, 8]))
        assert loaded.cause_locations() == live.cause_locations()
        assert loaded.scales == live.scales


class TestSweep:
    def test_sweep_matrix_shape_and_order(self):
        session = Session()
        results = session.sweep(["ep", "cg"], [4, 8], seeds=[0, 1], jobs=4)
        assert [(r.app, r.seed) for r in results] == [
            ("ep", 0), ("ep", 1), ("cg", 0), ("cg", 1),
        ]
        assert all(r.scales == (4, 8) for r in results)

    def test_resweep_is_all_cache_hits(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        session.sweep(["ep"], [4, 8], seeds=[0, 1], jobs=2)
        before = simulation_call_count()
        results = session.sweep(["ep"], [4, 8], seeds=[0, 1], jobs=2)
        assert simulation_call_count() == before
        assert all(r.cache_hits == 2 for r in results)

    def test_sweep_filters_invalid_scales(self):
        session = Session()
        # bt needs square process counts: 8 -> 4, 128 -> 121
        results = session.sweep(["bt"], [8, 128])
        assert results[0].scales == (4, 121)

    def test_sweep_parallel_matches_serial(self):
        serial = Session().sweep(["ep", "cg"], [4, 8], seeds=[0])
        parallel = Session().sweep(["ep", "cg"], [4, 8], seeds=[0], jobs=4)
        for s, p in zip(serial, parallel):
            assert s.report.cause_locations() == p.report.cause_locations()

    def test_sweep_warns_on_skipped_cells(self):
        session = Session()
        # bt has no valid scale in [5, 6, 7] besides 4 -> only one -> skipped
        with pytest.warns(UserWarning, match="skipping bt"):
            results = session.sweep(["bt", "ep"], [5, 6, 7, 8])
        assert [r.app for r in results] == ["ep"]

    def test_sweep_raises_when_every_cell_skipped(self):
        with (
            pytest.raises(ValueError, match=">= 2 valid scales"),
            pytest.warns(UserWarning, match="skipping bt"),
        ):
            Session().sweep(["bt"], [5, 6, 7])


class TestAnalyzeProgramSessionIntegration:
    def test_analyze_program_reuses_session(self, tmp_path):
        from repro import analyze_program

        session = Session(cache_dir=tmp_path / "cache")
        analyze_program(SOURCE, [4, 8], seed=1, session=session)
        before = simulation_call_count()
        analyze_program(SOURCE, [4, 8], seed=1, session=session)
        assert simulation_call_count() == before
