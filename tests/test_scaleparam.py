"""Scale-parametric analysis: symbolic-P classification and the
cross-scale lint driver.

Acceptance criteria under test (ISSUE 7):

* cross-scale lint verdicts are **bit-identical** to the concrete
  per-scale lint at every sampled P for all bundled applications;
* scale-generic programs get a *proven* verdict from a finite witness
  window; non-affine ones degrade honestly to *sampled* with reasons;
* the affine classifier and witness selection behave predictably on the
  documented term fragment.
"""

import pytest

from repro.analysis import (
    analyze_scale_parametric,
    exceeds_severity,
    parse_scales_spec,
    run_lint,
    run_lint_scales,
    select_witnesses,
    Severity,
)
from repro.analysis.scaleparam import AffineRP, describe_term
from repro.api import AnalysisConfig, Pipeline
from repro.api.config import canonical_json
from repro.apps import APPS, get_app
from repro.minilang import parse_program
from repro.psg import build_psg


def _compiled(source, name="t.mm"):
    program = parse_program(source, name)
    return program, build_psg(program).psg


RING = """\
def main() {
    sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 64,
             src = (rank - 1 + nprocs) % nprocs);
    allreduce(bytes = 8);
}
"""

PIPELINE = """\
def main() {
    if (rank > 0) {
        recv(src = rank - 1, tag = 2);
    }
    if (rank < nprocs - 1) {
        send(dest = rank + 1, tag = 2, bytes = 8);
    }
}
"""

HYPERCUBE = """\
def main() {
    var s = 1;
    while (s < nprocs) {
        sendrecv(dest = (rank + s) % nprocs, tag = 1, bytes = 64,
                 src = (rank - s + nprocs) % nprocs);
        s = s * 2;
    }
}
"""

BROKEN_AT_EVERY_SCALE = """\
def main() {
    if (rank == 0) {
        recv(src = 1, tag = 5);
    }
}
"""


class TestAffineClassifier:
    def _term_of(self, source, arg_index=0):
        """The symbolic term of the first MPI statement's argument."""
        program, _psg = _compiled(source)
        sa = analyze_scale_parametric(program)
        return sa

    def test_ring_is_generic_with_mod_p(self):
        program, _psg = _compiled(RING)
        sa = analyze_scale_parametric(program)
        assert sa.generic, sa.reasons
        assert sa.mod_p  # (rank + 1) % nprocs neighbor wrap
        assert sa.reasons == ()

    def test_pipeline_guards_are_generic(self):
        program, _psg = _compiled(PIPELINE)
        sa = analyze_scale_parametric(program)
        assert sa.generic, sa.reasons
        assert not sa.mod_p

    def test_hypercube_is_not_generic(self):
        program, _psg = _compiled(HYPERCUBE)
        sa = analyze_scale_parametric(program)
        assert not sa.generic
        assert sa.reasons  # documented degradation

    def test_describe_term_affine_forms(self):
        info = describe_term(("bin", "+", ("rank",), ("const", 1)))
        assert info.tame and info.affine == AffineRP(1, 0, 1)
        info = describe_term(
            ("bin", "%", ("bin", "+", ("rank",), ("const", 1)), ("P",))
        )
        assert info.tame and info.mod_p
        assert info.affine == AffineRP(1, 0, 1, "P")
        info = describe_term(("bin", "%", ("rank",), ("const", 4)))
        assert info.tame and 4 in info.moduli

    def test_describe_term_untame_forms(self):
        assert not describe_term(None).tame
        # rank * rank is nonlinear
        info = describe_term(("bin", "*", ("rank",), ("rank",)))
        assert not info.tame
        # builtin calls leave the fragment
        info = describe_term(("call", "floor", ("rank",)))
        assert not info.tame
        # division by a non-constant
        info = describe_term(("bin", "/", ("rank",), ("P",)))
        assert not info.tame

    def test_scale_analysis_partition_reuse(self):
        """One symbolic dataflow partitions ranks at any concrete P."""
        program, _psg = _compiled(PIPELINE)
        sa = analyze_scale_parametric(program)
        for nprocs in (3, 5, 8):
            summary = sa.partition_at(nprocs)
            assert summary.nprocs == nprocs
            assert summary.degraded is None


class TestWitnessSelection:
    def test_generic_program_is_proven(self):
        program, _psg = _compiled(RING)
        sa = analyze_scale_parametric(program)
        status, witnesses = select_witnesses(sa, 2, None)
        assert status == "proven"
        assert witnesses[0] == 2
        assert len(witnesses) >= 3

    def test_finite_range_inside_window_is_exhaustive(self):
        program, _psg = _compiled(RING)
        sa = analyze_scale_parametric(program)
        status, witnesses = select_witnesses(sa, 2, 6)
        assert status == "exhaustive"
        assert list(witnesses) == [2, 3, 4, 5, 6]

    def test_non_generic_program_samples_geometrically(self):
        program, _psg = _compiled(HYPERCUBE)
        sa = analyze_scale_parametric(program)
        status, witnesses = select_witnesses(sa, 2, None)
        assert status == "sampled"
        assert all(
            witnesses[i] < witnesses[i + 1]
            for i in range(len(witnesses) - 1)
        )

    def test_validity_predicate_filters_witnesses(self):
        app = get_app("bt")
        program = parse_program(app.source, "bt")
        sa = analyze_scale_parametric(program, dict(app.params))
        status, witnesses = select_witnesses(
            sa, 2, None, valid=app.nprocs_valid
        )
        assert all(app.nprocs_valid(p) for p in witnesses)

    def test_parse_scales_spec(self):
        assert parse_scales_spec("all") == (2, None, None)
        assert parse_scales_spec("4..64") == (4, 64, None)
        assert parse_scales_spec("4,8,16") == (4, 16, [4, 8, 16])
        assert parse_scales_spec((8, 128)) == (8, 128, None)
        assert parse_scales_spec([4, 8]) == (4, 8, [4, 8])
        with pytest.raises(ValueError):
            parse_scales_spec("nonsense")
        with pytest.raises(ValueError):
            parse_scales_spec("16..4")


class TestCrossScaleBitIdentity:
    """The acceptance gate: every witness report equals the concrete lint
    at that scale, for every bundled app."""

    @pytest.mark.parametrize("name", sorted(APPS))
    def test_app_witnesses_match_concrete_lint(self, name):
        app = get_app(name)
        program = parse_program(app.source, name)
        psg = build_psg(program).psg
        rep = run_lint_scales(
            program, psg, "all", dict(app.params),
            valid=app.nprocs_valid,
        )
        assert rep.scales, name
        for p in rep.scales:
            concrete = run_lint(program, psg, p, dict(app.params))
            assert canonical_json(rep.reports[p].to_json_dict()) == (
                canonical_json(concrete.to_json_dict())
            ), (name, p)
        # the no-false-positive gate extends across scales
        assert rep.ok, (name, rep.render())

    @pytest.mark.parametrize(
        "name", ["lu", "ep", "ft", "is", "nekbone", "sst"]
    )
    def test_affine_apps_prove_the_whole_range(self, name):
        app = get_app(name)
        program = parse_program(app.source, name)
        psg = build_psg(program).psg
        rep = run_lint_scales(
            program, psg, "all", dict(app.params),
            valid=app.nprocs_valid,
        )
        assert rep.status == "proven", (name, rep.reasons)
        assert rep.hi is None  # the claim covers every P >= lo

    def test_dirty_program_flagged_at_every_witness(self):
        program, psg = _compiled(BROKEN_AT_EVERY_SCALE)
        rep = run_lint_scales(program, psg, (2, 32))
        assert not rep.ok
        assert rep.status in ("proven", "exhaustive")
        for p in rep.scales:
            assert rep.reports[p].counts()["error"] == 1

    def test_skeleton_self_check_runs(self):
        app = get_app("lu")
        program = parse_program(app.source, "lu")
        psg = build_psg(program).psg
        rep = run_lint_scales(program, psg, "all", dict(app.params))
        assert rep.skeleton is not None
        p, ok = rep.skeleton_checked
        assert ok and p == rep.scales[0]

    def test_json_export_shape(self):
        program, psg = _compiled(RING)
        rep = run_lint_scales(program, psg, "2..10")
        doc = rep.to_json_dict()
        assert doc["status"] in ("proven", "exhaustive")
        assert doc["generic"] is True
        assert doc["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert all(str(p) in doc["reports"] for p in doc["scales"])
        assert doc["endpoint_forms"]


class TestSeverityGate:
    def test_exceeds_severity_thresholds(self):
        program, psg = _compiled(
            "def main() {\n"
            "    if (rank == 1) {\n"
            "        send(dest = 0, tag = 3, bytes = 8);\n"
            "    }\n"
            "    barrier();\n"
            "}\n"
        )
        findings = run_lint(program, psg, 4).findings
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert not exceeds_severity(findings, Severity.ERROR)
        assert exceeds_severity(findings, Severity.WARNING)
        assert exceeds_severity(findings, Severity.INFO)
        assert not exceeds_severity((), Severity.INFO)


class TestPipelineIntegration:
    def test_pipeline_lint_scales(self):
        pipe = Pipeline(RING, "ring.mm", AnalysisConfig())
        rep = pipe.lint(scales="all")
        assert rep.status == "proven"
        assert rep.ok
        # the single-scale form still works, and the two are exclusive
        concrete = pipe.lint(8)
        assert concrete.ok
        with pytest.raises(ValueError):
            pipe.lint(8, scales="all")
        with pytest.raises(ValueError):
            pipe.lint()

    def test_pipeline_lint_scales_respects_validity(self):
        app = get_app("bt")
        pipe = Pipeline.for_app(app)
        rep = pipe.lint(scales="all", valid=app.nprocs_valid)
        assert all(app.nprocs_valid(p) for p in rep.scales)
