"""Pipeline stages: typed artifacts, parallel profiling, full runs."""

import pytest

from repro.api import (
    AnalysisConfig,
    DetectStage,
    Pipeline,
    ProfileStage,
    ReportStage,
    StaticStage,
    run_fingerprint,
)
from repro.apps import get_app

#: rank 0 does extra work every iteration; everyone blocks on a barrier.
IMBALANCED = """\
def main() {
    for (var i = 0; i < 10; i = i + 1) {
        compute(flops = 20000000, name = "work");
        if (rank == 0) {
            compute(flops = 80000000, name = "extra");
        }
        barrier();
    }
}
"""


@pytest.fixture(scope="module")
def pipe() -> Pipeline:
    return Pipeline(IMBALANCED, filename="imb.mm", config=AnalysisConfig(seed=2))


class TestStages:
    def test_static_stage_artifact(self, pipe):
        art = StaticStage().run(pipe.source, pipe.filename, pipe.config)
        assert art.source_digest == pipe.source_digest
        assert len(art.psg) > 0
        assert art.program is art.result.program

    def test_profile_stage_single_scale(self, pipe):
        run = ProfileStage().run(pipe.static(), pipe.config, 4)
        assert run.nprocs == 4
        assert run.app_time > 0

    def test_detect_and_report_stages(self, pipe):
        runs = ProfileStage().run_scales(pipe.static(), pipe.config, [4, 8])
        report = DetectStage().run(pipe.static(), pipe.config, runs)
        assert report.scales == (4, 8)
        rendered = ReportStage().run(report, pipe.static(), with_source=True)
        assert rendered.with_source
        assert "ScalAna detection report" in rendered.text

    def test_report_with_source_needs_static(self, pipe):
        runs = ProfileStage().run_scales(pipe.static(), pipe.config, [4, 8])
        report = DetectStage().run(pipe.static(), pipe.config, runs)
        with pytest.raises(ValueError, match="StaticArtifact"):
            ReportStage().run(report, None, with_source=True)


class TestParallelScales:
    def test_parallel_matches_serial_bit_for_bit(self, pipe):
        stage = ProfileStage()
        serial = stage.run_scales(pipe.static(), pipe.config, [4, 8, 16])
        parallel = stage.run_scales(
            pipe.static(), pipe.config, [4, 8, 16], jobs=3
        )
        assert [r.nprocs for r in parallel] == [4, 8, 16]
        for s, p in zip(serial, parallel):
            assert run_fingerprint(s) == run_fingerprint(p)

    def test_fingerprint_distinguishes_scales(self, pipe):
        stage = ProfileStage()
        a, b = stage.run_scales(pipe.static(), pipe.config, [4, 8])
        assert run_fingerprint(a) != run_fingerprint(b)

    def test_more_jobs_than_scales(self, pipe):
        runs = ProfileStage().run_scales(
            pipe.static(), pipe.config, [4], jobs=8
        )
        assert [r.nprocs for r in runs] == [4]


class TestPipeline:
    def test_static_memoized(self, pipe):
        assert pipe.static() is pipe.static()

    def test_profile_artifact_key(self, pipe):
        art = pipe.profile(4)
        assert art.key.nprocs == 4
        assert art.key.source_digest == pipe.source_digest
        assert art.key.config_digest == pipe.config.digest()
        assert not art.cached  # no session bound

    def test_full_run_produces_detect_artifact(self, pipe):
        result = pipe.run([4, 8], jobs=2)
        assert result.scales == (4, 8)
        assert result.report.nprocs == 8
        assert result.source_digest == pipe.source_digest
        # the planted imbalance is found and attributed to the source line
        assert any("imb.mm" in loc for loc in result.report.cause_locations())

    def test_run_rejects_empty_scales(self, pipe):
        with pytest.raises(ValueError, match="at least one scale"):
            pipe.run([])

    def test_for_app_defaults_from_registry(self):
        app = get_app("cg")
        p = Pipeline.for_app(app, seed=5)
        assert p.filename == app.filename
        assert p.config.seed == 5
        assert p.config.params == dict(app.params)

    def test_adopt_static_rejects_other_program(self, pipe):
        other = Pipeline("def main() { barrier(); }")
        with pytest.raises(ValueError, match="different program"):
            other.adopt_static(pipe.static())

    def test_adopt_static_shares_artifact(self, pipe):
        twin = Pipeline(
            IMBALANCED, filename="imb.mm", config=AnalysisConfig(seed=99)
        )
        twin.adopt_static(pipe.static())
        assert twin.static() is pipe.static()


class TestFacadeParity:
    """The classic facade is a thin wrapper: same numbers, same report."""

    def test_scalana_profile_matches_pipeline(self, pipe):
        from repro import ScalAna

        tool = ScalAna(source=IMBALANCED, filename="imb.mm", seed=2)
        facade_run = tool.profile(4)
        pipeline_run = pipe.profile(4).run
        assert run_fingerprint(facade_run) == run_fingerprint(pipeline_run)

    def test_scalana_profile_scales_accepts_jobs(self):
        from repro import ScalAna

        tool = ScalAna(source=IMBALANCED, filename="imb.mm", seed=2)
        serial = tool.profile_scales([4, 8])
        parallel = tool.profile_scales([4, 8], jobs=2)
        for s, p in zip(serial, parallel):
            assert run_fingerprint(s) == run_fingerprint(p)

    def test_analyze_program_jobs_parity(self):
        from repro import analyze_program

        a = analyze_program(IMBALANCED, [4, 8], filename="imb.mm", seed=2)
        b = analyze_program(IMBALANCED, [4, 8], filename="imb.mm", seed=2, jobs=2)
        assert a.cause_locations() == b.cause_locations()
        assert a.scales == b.scales
