"""Tests for JSON serialization helpers."""

from dataclasses import dataclass
from enum import Enum

import numpy as np
import pytest

from repro.util.serialization import dump_json, load_json, to_jsonable


class Color(Enum):
    RED = "red"


@dataclass
class Point:
    x: int
    y: float


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert to_jsonable(v) == v

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(5)) == 5
        assert isinstance(to_jsonable(np.int64(5)), int)
        assert to_jsonable(np.float64(2.5)) == 2.5

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_enum(self):
        assert to_jsonable(Color.RED) == "red"

    def test_dataclass(self):
        assert to_jsonable(Point(1, 2.0)) == {"x": 1, "y": 2.0}

    def test_nested(self):
        obj = {"pts": [Point(1, 2.0)], "tag": Color.RED}
        assert to_jsonable(obj) == {"pts": [{"x": 1, "y": 2.0}], "tag": "red"}

    def test_set_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_dict_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestDumpLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.json"
        n = dump_json({"a": [1, 2], "b": "s"}, path)
        assert n == path.stat().st_size
        assert load_json(path) == {"a": [1, 2], "b": "s"}

    def test_bytes_returned_positive(self, tmp_path):
        assert dump_json([], tmp_path / "e.json") > 0
