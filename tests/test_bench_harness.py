"""Tests for the shared benchmark harness (repro.bench)."""

import pytest

from repro.apps import get_app
from repro.bench import (
    app_scales,
    measure_three_tools,
    profile_app,
    run_app,
    speedup_curve,
)
from repro.bench.harness import results_dir


class TestAppScales:
    def test_passthrough_for_unconstrained(self):
        ep = get_app("ep")
        assert app_scales(ep, [4, 8, 128]) == [4, 8, 128]

    def test_square_mapping_for_bt(self):
        bt = get_app("bt")
        # 128 -> 121, 8 -> 4, like the paper's "121 for BT and SP"
        assert app_scales(bt, [8, 128]) == [4, 121]

    def test_pow2_mapping_for_cg(self):
        cg = get_app("cg")
        assert app_scales(cg, [6, 12]) == [4, 8]

    def test_dedup_and_sort(self):
        bt = get_app("bt")
        assert app_scales(bt, [5, 6, 7]) == [4]


class TestMemoization:
    def test_run_app_cached(self):
        ep = get_app("ep")
        a = run_app(ep, 4)
        b = run_app(ep, 4)
        assert a is b  # lru-cached on (name, nprocs)

    def test_different_scales_not_shared(self):
        ep = get_app("ep")
        assert run_app(ep, 4) is not run_app(ep, 8)


class TestThreeTools:
    def test_reports_share_app_time(self):
        rep = measure_three_tools(get_app("ep"), 8)
        assert rep.tracer.app_time == rep.profiler.app_time == rep.scalana.app_time

    def test_profile_app_consistent_with_run(self):
        spec = get_app("ep")
        profile, comm, result = profile_app(spec, 8)
        assert result is run_app(spec, 8)
        assert profile.nprocs == 8


class TestSpeedupCurve:
    def test_baseline_is_one(self):
        curve = speedup_curve(get_app("ep"), [4, 8, 16])
        assert curve[4] == pytest.approx(1.0)
        assert curve[16] > curve[8] > 1.0

    def test_respects_constraints(self):
        curve = speedup_curve(get_app("bt"), [8, 16])
        assert set(curve) == {4, 16}


class TestResultsDir:
    def test_results_dir_exists_and_is_in_repo(self):
        d = results_dir()
        assert d.is_dir()
        assert d.name == "results"
        assert d.parent.name == "benchmarks"
