"""Integration matrix: the full pipeline on every evaluated app.

A coarse safety net over the whole system: for each of the 11 apps, run
profile -> detect at two scales, assert the report is structurally sound,
and check the Scalasca-comparison claim (the tracer's wait-state analysis,
given complete information, agrees with ScalAna about the case studies).
"""


import pytest

from repro import ScalAna
from repro.apps import EVALUATED_APPS, get_app
from repro.baselines import TracerTool, classify_wait_states
from repro.simulator import MachineModel, SimulationConfig


def small_scales(spec):
    out = []
    for p in (4, 8, 9, 16):
        if spec.nprocs_valid(p):
            out.append(p)
        if len(out) == 2:
            break
    return out


@pytest.mark.parametrize("name", EVALUATED_APPS)
class TestFullPipelinePerApp:
    def test_profile_and_detect(self, name):
        spec = get_app(name)
        tool = ScalAna.for_app(spec, seed=9)
        scales = small_scales(spec)
        runs = tool.profile_scales(scales)
        report = tool.detect(runs)
        # structural soundness
        assert report.nprocs == scales[-1]
        assert report.scales == tuple(scales)
        for rc in report.root_causes:
            assert rc.location
            assert rc.path_locations
            assert rc.imbalance >= 1.0 - 1e9
        for run in runs:
            assert run.overhead.overhead_percent < 50
            assert run.overhead.storage_bytes < 10 * 1024 * 1024
        text = report.render()
        assert "Root causes" in text

    def test_sampled_total_close_to_exact(self, name):
        """Sampled per-rank totals must track the true rank times."""
        spec = get_app(name)
        tool = ScalAna.for_app(spec, seed=9)
        p = small_scales(spec)[-1]
        run = tool.profile(p)
        for rank in range(p):
            sampled = sum(
                vec.time for (r, _vid), vec in run.profile.perf.items() if r == rank
            )
            exact = run.result.finish_times[rank]
            if exact > 0.5:  # enough samples to be meaningful
                assert sampled == pytest.approx(exact, rel=0.1)


class TestScalascaAgreement:
    """§VI-D comparison: with complete traces, the wait-state analysis
    (Scalasca's capability) blames the same code ScalAna's backtracking
    does — at orders of magnitude higher measurement cost."""

    @pytest.mark.parametrize("app_name,cause_function", [
        ("zeusmp", "bval3d"),
        ("sst", "handle_event"),
        ("nekbone", "ax"),
    ])
    def test_trace_analysis_agrees_with_scalana(self, app_name, cause_function):
        spec = get_app(app_name)
        config = SimulationConfig(
            nprocs=16, params=spec.merged_params(), seed=9,
            machine=spec.machine or MachineModel(),
        )
        tool = TracerTool()
        run = tool.run(spec.program, spec.psg, config)
        analysis = tool.analyze(run)
        causes = set()
        for vid, _wait in analysis.top_wait_vertices(4):
            main_cause = analysis.main_cause_of(vid)
            if main_cause is not None:
                causes.add(spec.psg.vertices[main_cause].function)
        assert cause_function in causes

    def test_wait_states_classified_for_case_studies(self):
        for app_name in ("zeusmp", "sst", "nekbone"):
            spec = get_app(app_name)
            config = SimulationConfig(
                nprocs=8, params=spec.merged_params(), seed=9,
                machine=spec.machine or MachineModel(),
            )
            run = TracerTool().run(spec.program, spec.psg, config)
            profile = classify_wait_states(run.result)
            assert profile.total_waiting() > 0
            assert profile.worst_culprits()
