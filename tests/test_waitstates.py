"""Tests for Scalasca-style wait-state classification."""

import pytest

from repro.baselines import WaitStateKind, classify_wait_states
from tests.conftest import run_source


class TestLateSender:
    def test_late_sender_detected_and_blamed(self):
        src = """def main() {
            if (rank == 0) {
                compute(flops = 2000000000);
                send(dest = 1, tag = 1, bytes = 8);
            } else {
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        profile = classify_wait_states(res)
        totals = profile.total_by_kind()
        assert totals[WaitStateKind.LATE_SENDER] == pytest.approx(1.0, rel=0.01)
        assert profile.worst_culprits()[0][0] == 0

    def test_transfer_when_send_early_but_wire_slow(self):
        src = """def main() {
            if (rank == 0) {
                send(dest = 1, tag = 1, bytes = 600000000);
            } else {
                compute(flops = 10000000);
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        profile = classify_wait_states(res)
        totals = profile.total_by_kind()
        # 0.1s wire time minus the 5ms the receiver computed first
        assert totals.get(WaitStateKind.TRANSFER, 0) > 0.05
        assert WaitStateKind.LATE_SENDER not in totals

    def test_mixed_late_sender_and_transfer_split(self):
        src = """def main() {
            if (rank == 0) {
                compute(flops = 1000000000);
                send(dest = 1, tag = 1, bytes = 600000000);
            } else {
                recv(src = 0, tag = 1);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        totals = classify_wait_states(res).total_by_kind()
        assert totals[WaitStateKind.LATE_SENDER] == pytest.approx(0.5, rel=0.05)
        assert totals[WaitStateKind.TRANSFER] == pytest.approx(0.1, rel=0.05)


class TestCollectiveWaits:
    def test_wait_at_nxn(self):
        src = """def main() {
            if (rank == 3) { compute(flops = 2000000000); }
            allreduce(bytes = 8);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        profile = classify_wait_states(res)
        totals = profile.total_by_kind()
        # three early ranks each wait ~1s
        assert totals[WaitStateKind.WAIT_AT_NXN] == pytest.approx(3.0, rel=0.01)
        assert profile.worst_culprits()[0] == (3, pytest.approx(3.0, rel=0.01))

    def test_wait_at_barrier(self):
        src = """def main() {
            if (rank == 0) { compute(flops = 1000000000); }
            barrier();
        }"""
        res, _, _ = run_source(src, nprocs=3)
        totals = classify_wait_states(res).total_by_kind()
        assert WaitStateKind.WAIT_AT_BARRIER in totals

    def test_laggard_not_charged_own_wait(self):
        src = """def main() {
            if (rank == 1) { compute(flops = 1000000000); }
            allreduce(bytes = 8);
        }"""
        res, _, _ = run_source(src, nprocs=2)
        profile = classify_wait_states(res)
        assert all(s.rank != 1 for s in profile.states)

    def test_balanced_program_no_collective_waits(self):
        src = """def main() {
            compute(flops = 1000000);
            barrier();
        }"""
        res, _, _ = run_source(src, nprocs=4)
        totals = classify_wait_states(res).total_by_kind()
        assert totals.get(WaitStateKind.WAIT_AT_BARRIER, 0.0) < 1e-6


class TestRendering:
    def test_render_contains_kinds_and_culprits(self):
        src = """def main() {
            if (rank == 0) { compute(flops = 1000000000); }
            allreduce(bytes = 8);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        text = classify_wait_states(res).render()
        assert "Wait at NxN" in text
        assert "most waited-for: rank 0" in text
        assert "total" in text
