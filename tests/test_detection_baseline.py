"""Detection-report regression gate against the committed PR-2 baseline.

``benchmarks/BENCH_2.json`` carries the canonical DetectionReport of the
IMBALANCED_SOURCE scenario, captured from the *pre-TraceBuffer* recording
layer (its sha256 is recorded in the provenance block).  This test re-runs
the scenario through the current pipeline and compares the full report —
any drift in the ground-truth recording, sampling, or detection layers
shows up as a diff here, not as a silent change in verdicts.
"""

import json
from pathlib import Path

import pytest

from repro.api.config import AnalysisConfig
from repro.api.pipeline import Pipeline
from tests.conftest import IMBALANCED_SOURCE

BENCH_2 = Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_2.json"


def _approx_equal(a, b, path=""):
    """Deep compare, floats to 1e-9 relative (cross-platform safe)."""
    if isinstance(a, float) or isinstance(b, float):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12), f"at {path}"
    elif isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), f"at {path}"
        for k in a:
            _approx_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, list):
        assert isinstance(b, list) and len(a) == len(b), f"at {path}"
        for i, (x, y) in enumerate(zip(a, b)):
            _approx_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"at {path}: {a!r} != {b!r}"


def test_report_matches_committed_pre_trace_buffer_baseline():
    baseline = json.loads(BENCH_2.read_text())
    expected = baseline["bit_identity_report"]
    pipe = Pipeline(
        source=IMBALANCED_SOURCE,
        filename="imbalanced.mm",
        config=AnalysisConfig(seed=0),
    )
    art = pipe.run([4, 8, 16])
    doc = art.report.to_json_dict()
    doc["detection_seconds"] = 0.0  # wall-clock, not part of the contract
    _approx_equal(doc, expected)
