"""Parametric communication graph: symbolic edge families vs ground truth.

The load-bearing property (ISSUE 7): ``CommGraph.instantiate(P)`` must
equal the concrete per-rank interpreter extraction — same send/recv/
collective multisets, coercions included — at every scale, across a
randomized corpus of wildcard/collective/imbalanced workloads (100+
seeds) and all bundled applications whose graphs build exactly.
Degradations must be honest: a degraded graph refuses to instantiate
rather than guessing.
"""

import random

import pytest

from repro.analysis import build_comm_graph, extract_concrete
from repro.analysis.commgraph import ScalingSkeleton
from repro.apps import APPS, get_app
from repro.minilang import parse_program
from repro.psg import build_psg
from repro.simulator.errors import SimulationError


def _compiled(source, name="t.mm"):
    program = parse_program(source, name)
    return program, build_psg(program).psg


def _assert_instance_matches(source, nprocs, params=None, name="t.mm"):
    program, psg = _compiled(source, name)
    graph = build_comm_graph(program, params)
    assert graph.exact, (name, graph.reason)
    inst = graph.instantiate(nprocs)
    conc = extract_concrete(program, psg, nprocs, params)
    assert inst.sends == conc.sends, name
    assert inst.recvs == conc.recvs, name
    assert inst.collectives == conc.collectives, name
    return graph, inst


# --------------------------------------------------------------------------
# randomized corpus: fragments composed per seed
# --------------------------------------------------------------------------


def _frag_ring(rng, t):
    k = rng.randint(1, 3)
    b = 8 * rng.randint(1, 64)
    reps = rng.randint(1, 3)
    body = (
        f"    sendrecv(dest = (rank + {k}) % nprocs, tag = {t} + it, "
        f"bytes = {b}, src = (rank - {k} + nprocs) % nprocs);\n"
    )
    return (
        f"  for (var it = 0; it < {reps}; it = it + 1) {{\n{body}  }}\n"
    )


def _frag_shift(rng, t):
    b = f"{8 * rng.randint(1, 8)} * (rank + 1)"
    return (
        f"  if (rank < nprocs - 1) {{\n"
        f"    send(dest = rank + 1, tag = {t}, bytes = {b});\n"
        f"  }}\n"
        f"  if (rank > 0) {{\n"
        f"    recv(src = rank - 1, tag = {t});\n"
        f"  }}\n"
    )


def _frag_fan_in(rng, t):
    wildcard = rng.random() < 0.5
    src = "ANY" if wildcard else "i"
    recv = f"      recv(src = {src}, tag = {t});\n"
    if not wildcard:
        # concrete-source variant loops over the sender index directly
        recv = f"      recv(src = i, tag = {t});\n"
    return (
        f"  if (rank == 0) {{\n"
        f"    for (var i = 1; i < nprocs; i = i + 1) {{\n"
        f"{recv}"
        f"    }}\n"
        f"  }} else {{\n"
        f"    send(dest = 0, tag = {t}, bytes = 8 * rank + {rng.randint(0, 32)});\n"
        f"  }}\n"
    )


def _frag_nonblocking(rng, t):
    b = 8 * rng.randint(1, 16)
    return (
        f"  isend(dest = (rank + 1) % nprocs, tag = {t}, bytes = {b}, req = s);\n"
        f"  irecv(src = (rank - 1 + nprocs) % nprocs, tag = {t}, req = r);\n"
        f"  waitall();\n"
    )


def _frag_collective(rng, t):
    choice = rng.choice(["allreduce", "bcast", "reduce", "barrier"])
    b = 8 * rng.randint(1, 32)
    if choice == "barrier":
        return "  barrier();\n"
    if choice == "allreduce":
        return f"  allreduce(bytes = {b});\n"
    return f"  {choice}(root = 0, bytes = {b});\n"


def _frag_compute(rng, t):
    base = 1000 * rng.randint(1, 50)
    slope = 100 * rng.randint(0, 20)
    m = rng.randint(2, 5)
    return f"  compute(flops = {base} + {slope} * (rank % {m}));\n"


def _frag_parity(rng, t):
    b = 8 * rng.randint(1, 8)
    return (
        f"  if (rank % 2 == 0) {{\n"
        f"    if (rank + 1 < nprocs) {{\n"
        f"      send(dest = rank + 1, tag = {t}, bytes = {b});\n"
        f"    }}\n"
        f"  }} else {{\n"
        f"    recv(src = rank - 1, tag = {t});\n"
        f"  }}\n"
    )


def _frag_param_bytes(rng, t):
    # exercises params: byte counts as a function of a free parameter
    return (
        f"  if (rank == 0) {{\n"
        f"    bcast(root = 0, bytes = n * {rng.randint(1, 4)});\n"
        f"  }} else {{\n"
        f"    bcast(root = 0, bytes = n * {rng.randint(1, 4)});\n"
        f"  }}\n"
    )


def _frag_helper_call(rng, t):
    # routed through a helper function: exercises call inlining
    return f"  halo({t});\n  halo({t + 1});\n"


_FRAGMENTS = [
    _frag_ring,
    _frag_shift,
    _frag_fan_in,
    _frag_nonblocking,
    _frag_collective,
    _frag_compute,
    _frag_parity,
    _frag_param_bytes,
    _frag_helper_call,
]

_HELPER = """\
def halo(t) {
  sendrecv(dest = (rank + 1) % nprocs, tag = t, bytes = 128,
           src = (rank - 1 + nprocs) % nprocs);
}
"""


def generate_program(seed):
    """A random but valid-by-construction MiniMPI workload: every
    endpoint is wrapped/guarded into range for any nprocs >= 2."""
    rng = random.Random(seed)
    parts = []
    tag = 10
    for _ in range(rng.randint(2, 5)):
        frag = rng.choice(_FRAGMENTS)
        parts.append(frag(rng, tag))
        tag += 10
    return _HELPER + "def main() {\n" + "".join(parts) + "}\n"


class TestRandomCorpus:
    @pytest.mark.parametrize("seed", range(120))
    def test_instantiation_matches_concrete_extraction(self, seed):
        source = generate_program(seed)
        params = {"n": 64 + 8 * (seed % 5)}
        for nprocs in (2, 5, 8):
            _assert_instance_matches(
                source, nprocs, params, name=f"seed{seed}.mm"
            )


class TestBundledApps:
    @pytest.mark.parametrize("name", sorted(APPS))
    def test_graph_matches_extraction_or_degrades_honestly(self, name):
        app = get_app(name)
        program = parse_program(app.source, name)
        psg = build_psg(program).psg
        graph = build_comm_graph(program, dict(app.params))
        if not graph.exact:
            # degradation must carry a reason and refuse to instantiate
            assert graph.reason
            with pytest.raises(SimulationError):
                graph.instantiate(4)
            return
        scales = [p for p in (2, 4, 8, 9, 16) if app.nprocs_valid(p)][:2]
        for nprocs in scales:
            inst = graph.instantiate(nprocs)
            conc = extract_concrete(
                program, psg, nprocs, dict(app.params)
            )
            assert inst.sends == conc.sends, (name, nprocs)
            assert inst.recvs == conc.recvs, (name, nprocs)
            assert inst.collectives == conc.collectives, (name, nprocs)

    def test_instantiation_cost_is_scale_bounded(self):
        """The O(edges) claim in practice: family count does not grow
        with P (it is a static property of the program)."""
        app = get_app("lu")
        program = parse_program(app.source, "lu")
        graph = build_comm_graph(program, dict(app.params))
        assert graph.exact
        n_families = len(graph.families)
        assert n_families < 50
        # the same family set serves every scale
        for nprocs in (4, 64, 256):
            assert len(graph.families) == n_families
            graph.instantiate(nprocs)


class TestGraphSemantics:
    def test_guard_splitting_boundary_cases(self):
        """(2*rank + 1 < nprocs)-style guards emit exactly the in-range
        endpoints at every scale, including the odd/even boundary."""
        source = """
def main() {
  if (2 * rank + 1 < nprocs) {
    send(dest = 2 * rank + 1, tag = 3, bytes = 8);
  }
  if (rank % 2 == 1) {
    recv(src = (rank - 1) / 2, tag = 3);
  }
}
"""
        for nprocs in (2, 3, 4, 5, 9):
            graph, inst = _assert_instance_matches(source, nprocs)
            senders = {r for (r, _d, _t, _b, _bl) in inst.sends}
            assert senders == {
                r for r in range(nprocs) if 2 * r + 1 < nprocs
            }

    def test_loop_trip_counts_are_integer_exact(self):
        source = """
def main() {
  for (var i = 0; i < 7; i = i + 2) {
    send(dest = (rank + 1) % nprocs, tag = i, bytes = 8);
    recv(src = (rank - 1 + nprocs) % nprocs, tag = i);
  }
}
"""
        graph, inst = _assert_instance_matches(source, 4)
        # ceil(7/2) = 4 iterations x 4 ranks
        assert sum(inst.sends.values()) == 16

    def test_sendrecv_splits_into_send_and_recv(self):
        source = """
def main() {
  sendrecv(dest = (rank + 1) % nprocs, tag = 5, bytes = 32,
           src = (rank - 1 + nprocs) % nprocs);
}
"""
        _graph, inst = _assert_instance_matches(source, 6)
        assert sum(inst.sends.values()) == 6
        assert sum(inst.recvs.values()) == 6

    def test_degraded_on_data_dependent_while(self):
        source = """
def main() {
  var s = 1;
  while (s < nprocs) {
    sendrecv(dest = (rank + s) % nprocs, tag = 1, bytes = 8,
             src = (rank - s + nprocs) % nprocs);
    s = s * 2;
  }
}
"""
        program, _psg = _compiled(source)
        graph = build_comm_graph(program)
        assert not graph.exact
        assert "while" in graph.reason

    def test_opaque_condition_tolerated_when_silent(self):
        """A data-dependent branch that emits nothing must not degrade
        the graph (assigned names are poisoned instead)."""
        source = """
def main() {
  var acc = 0;
  while (acc < 3) {
    acc = acc + 1;
  }
  sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 8,
           src = (rank - 1 + nprocs) % nprocs);
}
"""
        _assert_instance_matches(source, 4)

    def test_edge_weights_are_symmetric_pairs(self):
        source = """
def main() {
  sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 1000,
           src = (rank - 1 + nprocs) % nprocs);
}
"""
        program, _psg = _compiled(source)
        graph = build_comm_graph(program)
        weights = graph.edge_weights(6)
        assert set(weights) == {
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)
        }
        assert all(lo < hi for lo, hi in weights)
        assert len(set(weights.values())) == 1  # uniform ring traffic


class TestScalingSkeleton:
    def test_counts_match_instances(self):
        app = get_app("lu")
        program = parse_program(app.source, "lu")
        graph = build_comm_graph(program, dict(app.params))
        skeleton = ScalingSkeleton(graph)
        for nprocs in (2, 4, 8, 16):
            counts = skeleton.counts_at(nprocs)
            inst = graph.instantiate(nprocs)
            assert counts["messages"] == sum(inst.sends.values())
            assert counts["collective_ops"] == sum(
                inst.collectives.values()
            )

    def test_per_rank_counts_tile_the_totals(self):
        app = get_app("zeusmp")
        program = parse_program(app.source, "zeusmp")
        graph = build_comm_graph(program, dict(app.params))
        skeleton = ScalingSkeleton(graph)
        nprocs = 12
        per_rank = skeleton.per_rank_counts(nprocs)
        totals = skeleton.counts_at(nprocs)
        assert len(per_rank["sends"]) == nprocs
        assert sum(per_rank["sends"]) == totals["messages"]
        assert sum(per_rank["recv_posts"]) == totals["recv_posts"]
        assert sum(per_rank["collective_ops"]) == totals["collective_ops"]

    def test_formulas_render(self):
        app = get_app("lu")
        program = parse_program(app.source, "lu")
        graph = build_comm_graph(program, dict(app.params))
        formulas = ScalingSkeleton(graph).formulas()
        assert formulas  # one entry per family
        assert all(isinstance(f, str) for f in formulas)
