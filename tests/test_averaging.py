"""Tests for multi-run averaging (the paper's three-run methodology)."""

import numpy as np
import pytest

from repro.minilang.parser import parse_program
from repro.psg import build_psg
from repro.runtime import profile_run
from repro.runtime.averaging import profile_run_averaged
from repro.simulator import MachineModel, SimulationConfig

NOISY = """def main() {
    for (var it = 0; it < 10; it = it + 1) {
        compute(flops = 100000000, name = "work");
        allreduce(bytes = 8);
    }
}"""


@pytest.fixture(scope="module")
def noisy_setup():
    prog = parse_program(NOISY, "noisy.mm")
    psg = build_psg(prog).psg
    machine = MachineModel(noise_sigma=0.15)
    return prog, psg, machine


class TestAveraging:
    def test_repetitions_validated(self, noisy_setup):
        prog, psg, machine = noisy_setup
        cfg = SimulationConfig(nprocs=2, machine=machine)
        with pytest.raises(ValueError):
            profile_run_averaged(prog, psg, cfg, repetitions=0)

    def test_single_repetition_is_plain_run(self, noisy_setup):
        prog, psg, machine = noisy_setup
        cfg = SimulationConfig(nprocs=2, machine=machine, seed=5)
        one = profile_run_averaged(prog, psg, cfg, repetitions=1)
        assert one.nprocs == 2

    def test_averaging_reduces_variance(self, noisy_setup):
        """The whole point: averaged estimates jitter less across seeds."""
        prog, psg, machine = noisy_setup
        work_vid = next(
            v.vid for v in psg.vertices.values() if v.name == "work"
        )

        def estimate(seed, reps):
            cfg = SimulationConfig(nprocs=2, machine=machine, seed=seed)
            run = profile_run_averaged(prog, psg, cfg, repetitions=reps)
            return run.profile.vector(0, work_vid).time

        singles = [estimate(s, 1) for s in range(12)]
        averaged = [estimate(s, 4) for s in range(12)]
        assert np.std(averaged) < np.std(singles)

    def test_derived_seeds_differ_across_repetitions(self, noisy_setup):
        prog, psg, machine = noisy_setup
        cfg = SimulationConfig(nprocs=2, machine=machine, seed=7)
        avg = profile_run_averaged(prog, psg, cfg, repetitions=3)
        single = profile_run(prog, psg, cfg)
        # averaged time differs from any single run's (noise differs per rep)
        work_vid = next(v.vid for v in psg.vertices.values() if v.name == "work")
        assert avg.profile.vector(0, work_vid).time != pytest.approx(
            single.profile.vector(0, work_vid).time, rel=1e-12
        )

    def test_comm_structure_preserved(self, noisy_setup):
        prog, psg, machine = noisy_setup
        cfg = SimulationConfig(nprocs=4, machine=machine, seed=7)
        avg = profile_run_averaged(prog, psg, cfg, repetitions=3)
        single = profile_run(prog, psg, cfg)
        assert set(avg.comm.groups) == set(single.comm.groups)

    def test_detection_works_on_averaged_runs(self, noisy_setup):
        from repro.detection import detect_scaling_loss

        prog, psg, machine = noisy_setup
        runs = [
            profile_run_averaged(
                prog, psg,
                SimulationConfig(nprocs=p, machine=machine, seed=7),
                repetitions=3,
            )
            for p in (2, 4, 8)
        ]
        report = detect_scaling_loss(runs, psg=psg)
        assert report.scales == (2, 4, 8)
