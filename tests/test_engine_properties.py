"""Property-based tests of the simulation engine.

Hypothesis generates random SPMD programs from deadlock-free templates and
checks global invariants: termination, determinism, message conservation,
clock monotonicity, and agreement with analytic models on reducible cases.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang.ast_nodes import MpiOp
from repro.simulator import NetworkModel
from tests.conftest import run_source


@st.composite
def spmd_programs(draw):
    """Random but deadlock-free SPMD programs.

    Building blocks are symmetric: ring sendrecvs, matched isend/irecv +
    waitall, collectives, and computes — every rank executes the same
    sequence, so the program always terminates.
    """
    n_stmts = draw(st.integers(min_value=1, max_value=6))
    blocks = []
    for i in range(n_stmts):
        kind = draw(st.sampled_from(["compute", "ring", "pair", "coll"]))
        if kind == "compute":
            flops = draw(st.integers(min_value=1000, max_value=10_000_000))
            blocks.append(f"compute(flops = {flops} + 100 * rank % 7);")
        elif kind == "ring":
            nbytes = draw(st.integers(min_value=1, max_value=100_000))
            tag = draw(st.integers(min_value=0, max_value=5))
            blocks.append(
                f"sendrecv(dest = (rank + 1) % nprocs, tag = {tag}, "
                f"bytes = {nbytes}, src = (rank - 1 + nprocs) % nprocs);"
            )
        elif kind == "pair":
            tag = 10 + i
            blocks.append(
                f"isend(dest = (rank + 1) % nprocs, tag = {tag}, "
                f"bytes = 256, req = s{i});"
                f"irecv(src = (rank - 1 + nprocs) % nprocs, tag = {tag}, "
                f"req = r{i}); waitall();"
            )
        else:
            blocks.append(
                draw(
                    st.sampled_from(
                        [
                            "barrier();",
                            "allreduce(bytes = 8);",
                            "bcast(root = 0, bytes = 64);",
                            "alltoall(bytes = 32);",
                            "reduce(root = 0, bytes = 16);",
                        ]
                    )
                )
            )
    loop = draw(st.booleans())
    body = " ".join(blocks)
    if loop:
        body = f"for (var it = 0; it < 3; it = it + 1) {{ {body} }}"
    return f"def main() {{ {body} }}"


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(spmd_programs(), st.integers(min_value=1, max_value=9))
    def test_terminates_and_conserves_messages(self, source, nprocs):
        res, _, _ = run_source(source, nprocs=nprocs)
        # every posted send was matched exactly once
        for rec in res.p2p_records:
            assert not math.isnan(rec.completion)
            assert 0 <= rec.send_rank < nprocs
            assert 0 <= rec.recv_rank < nprocs
            assert rec.arrival >= rec.send_time
            assert rec.completion >= rec.recv_post
        # collectives complete for every rank
        for crec in res.collective_records:
            assert set(crec.arrivals) == set(range(nprocs))
            for r in range(nprocs):
                assert crec.completions[r] >= crec.arrivals[r]

    @settings(max_examples=30, deadline=None)
    @given(spmd_programs(), st.integers(min_value=2, max_value=8))
    def test_deterministic(self, source, nprocs):
        r1, _, _ = run_source(source, nprocs=nprocs, seed=3)
        r2, _, _ = run_source(source, nprocs=nprocs, seed=3)
        assert r1.finish_times == r2.finish_times
        assert len(r1.segments) == len(r2.segments)

    @settings(max_examples=30, deadline=None)
    @given(spmd_programs(), st.integers(min_value=1, max_value=6))
    def test_per_rank_segments_monotone(self, source, nprocs):
        res, _, _ = run_source(source, nprocs=nprocs)
        by_rank = {}
        for seg in res.segments:
            by_rank.setdefault(seg.rank, []).append(seg)
        for segs in by_rank.values():
            segs.sort(key=lambda s: (s.start, s.end))
            t = 0.0
            for seg in segs:
                assert seg.start >= t - 1e-12
                assert seg.end >= seg.start
                t = seg.end

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=12))
    def test_compute_only_matches_analytic_model(self, nprocs):
        """With no communication, every rank's finish time is exactly the
        analytic flops/rate sum."""
        src = """def main() {
            for (var i = 0; i < 4; i = i + 1) {
                compute(flops = 1000000 * (rank + 1));
            }
        }"""
        res, _, _ = run_source(src, nprocs=nprocs)
        for r in range(nprocs):
            expected = 4 * 1_000_000 * (r + 1) / 2.0e9
            assert res.finish_times[r] == pytest.approx(expected, rel=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_collective_cost_matches_model(self, nprocs, nbytes):
        """A single allreduce on idle ranks costs exactly the network
        model's collective term."""
        src = f"def main() {{ allreduce(bytes = {nbytes}); }}"
        res, _, _ = run_source(src, nprocs=nprocs)
        expected = NetworkModel().collective_cost(MpiOp.ALLREDUCE, nprocs, nbytes)
        assert res.total_time == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(spmd_programs())
    def test_vertex_time_equals_segment_sums(self, source):
        res, psg, _ = run_source(source, nprocs=4)
        sums: dict[tuple[int, int], float] = {}
        for seg in res.segments:
            key = (seg.rank, seg.vid)
            sums[key] = sums.get(key, 0.0) + seg.duration
        assert set(sums) == set(res.vertex_time)
        for key, t in sums.items():
            assert res.vertex_time[key] == pytest.approx(t, rel=1e-9, abs=1e-15)
