"""Tests for OpenMP-style intra-rank threading (compute threads=...)."""

import pytest

from repro.minilang.parser import parse_program
from repro.simulator import MachineModel, SimulationConfig, Workload, simulate
from repro.simulator.costmodel import CostModel
from repro.simulator.errors import MpiUsageError
from tests.conftest import run_source


class TestCostModel:
    def test_threads_speed_up_compute(self):
        cm = CostModel()
        t1, _ = cm.compute_cost(0, Workload(flops=1e9, threads=1))
        t4, _ = cm.compute_cost(0, Workload(flops=1e9, threads=4))
        # efficiency 0.85: speedup = 1 + 0.85*3 = 3.55
        assert t1 / t4 == pytest.approx(3.55, rel=1e-6)

    def test_threads_capped_at_cores(self):
        cm = CostModel(MachineModel(cores_per_rank=2))
        t2, _ = cm.compute_cost(0, Workload(flops=1e9, threads=2))
        t64, _ = cm.compute_cost(0, Workload(flops=1e9, threads=64))
        assert t2 == t64

    def test_counters_unchanged_by_threads(self):
        cm = CostModel()
        _, c1 = cm.compute_cost(0, Workload(flops=1e6, mem_bytes=1e6, threads=1))
        _, c8 = cm.compute_cost(0, Workload(flops=1e6, mem_bytes=1e6, threads=8))
        assert c1.tot_ins == c8.tot_ins
        assert c1.tot_lst_ins == c8.tot_lst_ins
        # but cycles track the (shorter) duration
        assert c8.tot_cyc < c1.tot_cyc

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValueError):
            Workload(flops=1, threads=0)


class TestLanguageSurface:
    def test_parse_and_roundtrip(self):
        from repro.minilang.pretty import pretty_print

        src = "def main() { compute(flops = 10, threads = 4); }"
        prog = parse_program(src)
        text = pretty_print(prog)
        assert "threads = 4" in text
        assert pretty_print(parse_program(text)) == text

    def test_threads_expression_evaluated(self):
        src = """def main() {
            compute(flops = 2000000000, threads = 1 + 3 * (rank % 2));
        }"""
        res, _, _ = run_source(src, nprocs=2)
        # rank 0: 1 thread (1s); rank 1: 4 threads (~0.28s)
        assert res.finish_times[0] == pytest.approx(1.0)
        assert res.finish_times[1] == pytest.approx(1.0 / 3.55, rel=1e-3)

    def test_threads_below_one_rejected_at_runtime(self):
        src = "def main() { compute(flops = 1, threads = 0); }"
        with pytest.raises(MpiUsageError, match="threads"):
            run_source(src, nprocs=1)


class TestZeusmpFixUsesThreads:
    def test_fixed_variant_faster_via_threads(self):
        from repro.apps import get_app

        base = get_app("zeusmp")
        fixed = get_app("zeusmp_fixed")
        assert fixed.params["bval_threads"] == 4
        prog = base.program
        psg = base.psg
        cfg_b = SimulationConfig(nprocs=8, params=base.merged_params(), seed=1)
        cfg_f = SimulationConfig(nprocs=8, params=fixed.merged_params(), seed=1)
        rb = simulate(prog, psg, cfg_b)
        rf = simulate(fixed.program, fixed.psg, cfg_f)
        bval = [v for v in psg.vertices.values() if v.name == "bval_loop"][0]
        tb = rb.vertex_time[(0, bval.vid)]
        tf = rf.vertex_time[(0, bval.vid)]
        assert tf < tb / 2  # 4 threads at 85% efficiency
        # and the instruction counts stay identical (same work)
        cb = rb.vertex_counters[(0, bval.vid)].tot_ins
        cf = rf.vertex_counters[(0, bval.vid)].tot_ins
        assert cb == pytest.approx(cf)
