"""Tests for the DOT/GraphML exporters and the ASCII timeline."""

import pytest

from repro.ppg import build_ppg
from repro.tools.export import ppg_to_dot, psg_to_dot, psg_to_graphml, write_text
from repro.tools.timeline import render_timeline
from tests.conftest import profile_source, run_source

PIPELINE = """def main() {
    for (var it = 0; it < 4; it = it + 1) {
        if (rank > 0) { recv(src = rank - 1, tag = 1); }
        compute(flops = 100000000, name = "stage");
        if (rank < nprocs - 1) { send(dest = rank + 1, tag = 1, bytes = 64); }
        barrier();
    }
}"""


class TestPsgDot:
    def test_dot_syntax_and_content(self, fig3_static):
        dot = psg_to_dot(fig3_static.psg)
        assert dot.startswith("digraph PSG {")
        assert dot.rstrip().endswith("}")
        assert "MPI_Bcast" in dot
        assert "shape=house" in dot  # MPI vertices
        assert "shape=diamond" in dot  # branch

    def test_every_vertex_present(self, fig3_static):
        dot = psg_to_dot(fig3_static.psg)
        for vid in fig3_static.psg.vertices:
            assert f"n{vid} [" in dot

    def test_recursion_edge_rendered(self):
        from repro.minilang.parser import parse_program
        from repro.psg import build_complete_psg

        prog = parse_program(
            "def main() { r(); } def r() { compute(flops = 1); r(); }"
        )
        dot = psg_to_dot(build_complete_psg(prog))
        assert "label=recursion" in dot

    def test_quoting_safe(self):
        from repro.minilang.parser import parse_program
        from repro.psg import build_psg

        prog = parse_program(
            'def main() { compute(flops = 1, name = "a\\"b"); barrier(); }'
        )
        dot = psg_to_dot(build_psg(prog).psg)
        assert '\\"' in dot

    def test_graphml_export(self, fig3_static, tmp_path):
        path = tmp_path / "psg.graphml"
        psg_to_graphml(fig3_static.psg, path)
        assert path.stat().st_size > 0
        import networkx as nx

        g = nx.read_graphml(path)
        assert g.number_of_nodes() == len(fig3_static.psg)


class TestPpgDot:
    def test_clusters_and_comm_edges(self):
        run, psg, _ = profile_source(PIPELINE, 4)
        ppg = build_ppg(psg, 4, run.profile, run.comm)
        dot = ppg_to_dot(ppg)
        assert "cluster_rank0" in dot and "cluster_rank3" in dot
        assert "color=red" in dot  # at least one waiting comm edge

    def test_max_ranks_truncation(self):
        run, psg, _ = profile_source(PIPELINE, 8)
        ppg = build_ppg(psg, 8, run.profile, run.comm)
        dot = ppg_to_dot(ppg, max_ranks=2)
        assert "cluster_rank1" in dot
        assert "cluster_rank2" not in dot

    def test_write_text(self, tmp_path):
        n = write_text("hello", tmp_path / "x.dot")
        assert n == 5


class TestTimeline:
    def test_render_shape(self):
        res, _, _ = run_source(PIPELINE, 4)
        text = render_timeline(res, width=60)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 ranks
        for line in lines[1:]:
            assert line.startswith("rank")
            assert len(line.split("|")[1]) == 60

    def test_pipeline_shows_waiting(self):
        res, _, _ = run_source(PIPELINE, 4)
        text = render_timeline(res, width=80)
        # downstream ranks wait for the pipeline fill
        rank3 = [ln for ln in text.splitlines() if ln.startswith("rank   3")][0]
        assert "w" in rank3
        assert "#" in rank3

    def test_window_selection(self):
        res, _, _ = run_source(PIPELINE, 2)
        full = render_timeline(res, width=40)
        head = render_timeline(res, width=40, t1=res.total_time / 4)
        assert full != head

    def test_max_ranks_cap(self):
        res, _, _ = run_source(PIPELINE, 8)
        text = render_timeline(res, width=40, max_ranks=3)
        assert len(text.splitlines()) == 4

    def test_empty_window_rejected(self):
        res, _, _ = run_source(PIPELINE, 2)
        with pytest.raises(ValueError):
            render_timeline(res, t0=5.0, t1=5.0)

    def test_needs_segments(self):
        res, _, _ = run_source(PIPELINE, 2, record_segments=False)
        with pytest.raises(ValueError):
            render_timeline(res)
