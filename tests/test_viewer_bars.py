"""Tests for the viewer's per-rank imbalance bars."""

import pytest

from repro.ppg import build_ppg
from repro.tools.viewer import render_rank_bars
from tests.conftest import profile_source

SKEWED = """def main() {
    compute(flops = 100000000 + 900000000 * (1 - min(rank, 1)), name = "hot");
    allreduce(bytes = 8);
}"""


@pytest.fixture(scope="module")
def skewed_ppg():
    run, psg, _ = profile_source(SKEWED, 8)
    hot = [v for v in psg.vertices.values() if v.name == "hot"][0]
    return build_ppg(psg, 8, run.profile, run.comm), hot.vid


class TestRankBars:
    def test_all_ranks_rendered(self, skewed_ppg):
        ppg, vid = skewed_ppg
        text = render_rank_bars(ppg, vid)
        for r in range(8):
            assert f"rank    {r}" in text

    def test_abnormal_rank_marked(self, skewed_ppg):
        ppg, vid = skewed_ppg
        text = render_rank_bars(ppg, vid)
        rank0 = [ln for ln in text.splitlines() if "rank    0" in ln][0]
        rank3 = [ln for ln in text.splitlines() if "rank    3" in ln][0]
        assert "<--" in rank0
        assert "<--" not in rank3

    def test_bars_proportional(self, skewed_ppg):
        ppg, vid = skewed_ppg
        text = render_rank_bars(ppg, vid, width=20)
        rank0 = [ln for ln in text.splitlines() if "rank    0" in ln][0]
        rank1 = [ln for ln in text.splitlines() if "rank    1" in ln][0]
        assert rank0.count("#") > 3 * rank1.count("#")

    def test_max_ranks_folding(self, skewed_ppg):
        ppg, vid = skewed_ppg
        text = render_rank_bars(ppg, vid, max_ranks=3)
        assert "5 more ranks" in text

    def test_never_sampled_vertex(self, skewed_ppg):
        ppg, _vid = skewed_ppg
        root = ppg.psg.root_id
        assert "never sampled" in render_rank_bars(ppg, root)
