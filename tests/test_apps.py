"""Application registry tests: every app parses, analyzes, runs, scales."""


import pytest

from repro.apps import APPS, CASE_STUDY_APPS, EVALUATED_APPS, get_app
from repro.psg.graph import VertexType
from repro.simulator import SimulationConfig, simulate


def run_app(spec, nprocs, seed=0, params=None):
    cfg = SimulationConfig(
        nprocs=nprocs,
        params=spec.merged_params(params),
        seed=seed,
        machine=spec.machine or SimulationConfig(nprocs=1).machine,
    )
    return simulate(spec.program, spec.psg, cfg)


class TestRegistry:
    def test_all_evaluated_apps_present(self):
        for name in EVALUATED_APPS:
            assert name in APPS

    def test_unknown_app_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_app("npb-cg")

    def test_case_study_variants_exist(self):
        for base, fixed in CASE_STUDY_APPS.values():
            assert base in APPS and fixed in APPS

    def test_nprocs_constraints(self):
        bt = get_app("bt")
        assert bt.nprocs_valid(16) and not bt.nprocs_valid(8)
        cg = get_app("cg")
        assert cg.nprocs_valid(8) and not cg.nprocs_valid(6)
        with pytest.raises(ValueError, match="square"):
            bt.check_nprocs(8)

    def test_merged_params_overrides(self):
        cg = get_app("cg")
        merged = cg.merged_params({"niter": 3})
        assert merged["niter"] == 3
        assert cg.params["niter"] != 3 or True  # original untouched
        assert "nnz" in merged


@pytest.mark.parametrize("name", EVALUATED_APPS)
class TestEveryApp:
    def test_psg_has_mpi_and_comp(self, name):
        spec = get_app(name)
        stats = spec.psg.stats()
        assert stats["mpi"] >= 1
        assert stats["comp"] >= 1

    def test_runs_at_16_ranks(self, name):
        spec = get_app(name)
        res = run_app(spec, 16)
        assert res.total_time > 0
        assert len(res.finish_times) == 16

    def test_deterministic(self, name):
        spec = get_app(name)
        a = run_app(spec, 16, seed=3)
        b = run_app(spec, 16, seed=3)
        assert a.finish_times == b.finish_times

    def test_strong_scaling_speedup(self, name):
        """Shape check: 4x the ranks gives a real speedup (> 1.3x) for every
        app except the deliberately poorly-scaling SST analog."""
        spec = get_app(name)
        small, big = (4, 16)
        t_small = run_app(spec, small).total_time
        t_big = run_app(spec, big).total_time
        speedup = t_small / t_big
        if name == "sst":
            assert speedup < 2.0  # SST barely scales (paper: 1.2x at 32)
        else:
            assert speedup > 1.3, f"{name}: speedup {speedup:.2f}"


class TestCommunicationSkeletons:
    def test_cg_hypercube_exchange_count(self):
        spec = get_app("cg")
        res = run_app(spec, 8, params={"niter": 2})
        # log2(8)=3 sendrecv per conj_grad call, (niter+1) calls, 8 ranks
        sendrecvs = list(res.p2p_records)
        assert len(sendrecvs) == 3 * 3 * 8

    def test_ft_uses_alltoall(self):
        spec = get_app("ft")
        res = run_app(spec, 8, params={"niter": 2})
        from repro.minilang.ast_nodes import MpiOp

        ops = {c.mpi_op for c in res.collective_records}
        assert MpiOp.ALLTOALL in ops

    def test_lu_pipeline_wavefront_waits(self):
        spec = get_app("lu")
        res = run_app(spec, 8, params={"niter": 2})
        # downstream ranks wait on the pipeline fill
        waits = [r.wait_time for r in res.p2p_records if r.wait_time > 0]
        assert waits

    def test_ep_is_embarrassingly_parallel(self):
        spec = get_app("ep")
        res = run_app(spec, 8)
        assert len(res.p2p_records) == 0
        assert len(res.collective_records) == 3

    def test_bt_face_exchange_on_square_grid(self):
        spec = get_app("bt")
        res = run_app(spec, 9, params={"niter": 1})
        assert len(res.p2p_records) == 3 * 9  # 3 directions x 9 ranks

    def test_mg_vcycle_levels(self):
        spec = get_app("mg")
        res = run_app(spec, 4, params={"niter": 1})
        assert len(res.p2p_records) > 0
        assert res.total_time > 0


class TestCaseStudyBehaviour:
    def test_zeusmp_fix_improves_runtime(self):
        base = run_app(get_app("zeusmp"), 16).total_time
        fixed = run_app(get_app("zeusmp_fixed"), 16).total_time
        assert fixed < base

    def test_sst_fix_improves_runtime_substantially(self):
        base = run_app(get_app("sst"), 16).total_time
        fixed = run_app(get_app("sst_fixed"), 16).total_time
        assert fixed < 0.8 * base

    def test_nekbone_fix_improves_runtime(self):
        base = run_app(get_app("nekbone"), 16).total_time
        fixed = run_app(get_app("nekbone_fixed"), 16).total_time
        assert fixed < base

    def test_zeusmp_busy_ranks_pattern(self):
        res = run_app(get_app("zeusmp"), 8)
        spec = get_app("zeusmp")
        bval = [v for v in spec.psg.vertices.values() if v.name == "bval_loop"]
        assert bval
        vid = bval[0].vid
        times = res.time_of(vid)
        # ranks 0 and 4 are busy; others never execute the loop body
        assert times[0] > 0 and times[4] > 0
        assert times[1] == 0 and times[3] == 0

    def test_sst_tot_ins_imbalance(self):
        """Fig. 15's premise: per-rank TOT_INS differ a lot before the fix."""
        spec = get_app("sst")
        res = run_app(spec, 16)
        # the use_map branch is contracted into one Comp inside handle_event
        scan = [
            v for v in spec.psg.vertices.values()
            if v.function == "handle_event" and v.vtype is VertexType.COMP
        ]
        assert scan
        vid = scan[0].vid
        ins = [
            res.vertex_counters.get((r, vid)).tot_ins
            if (r, vid) in res.vertex_counters else 0.0
            for r in range(16)
        ]
        assert max(ins) > 2 * min(i for i in ins if i > 0)

    def test_nekbone_equal_lst_ins_unequal_cycles(self):
        """Fig. 16's premise: TOT_LST_INS equal across ranks, TOT_CYC not."""
        spec = get_app("nekbone")
        res = run_app(spec, 16)
        # the blas_opt branch is contracted into one Comp: the dgemm vertex
        dgemm = [
            v for v in spec.psg.vertices.values()
            if v.function == "ax" and v.vtype is VertexType.COMP
        ][0]
        lst = [res.vertex_counters[(r, dgemm.vid)].tot_lst_ins for r in range(16)]
        cyc = [res.vertex_counters[(r, dgemm.vid)].tot_cyc for r in range(16)]
        assert max(lst) / min(lst) < 1.01  # identical load/stores
        assert max(cyc) / min(cyc) > 1.15  # but unequal cycles
