"""Interpreter tests: expression evaluation, control flow, error paths."""

import pytest

from repro.minilang.parser import parse_program
from repro.psg import build_psg
from repro.simulator import ops
from repro.simulator.errors import (
    IterationLimitError,
    MpiUsageError,
    SimulationError,
)
from repro.simulator.interp import Interpreter


def run_ops(source, rank=0, nprocs=2, params=None, max_iterations=10_000):
    prog = parse_program(source)
    psg = build_psg(prog).psg
    interp = Interpreter(
        prog, psg, rank, nprocs, params, max_iterations=max_iterations
    )
    return list(interp.run())


def first_compute(source, **kw) -> ops.ComputeOp:
    result = [o for o in run_ops(source, **kw) if isinstance(o, ops.ComputeOp)]
    return result[0]


class TestExpressionEvaluation:
    def _flops(self, expr, rank=3, nprocs=8, params=None):
        op = first_compute(
            f"def main() {{ compute(flops = {expr}); }}",
            rank=rank, nprocs=nprocs, params=params,
        )
        return op.workload.flops

    def test_arithmetic(self):
        assert self._flops("2 + 3 * 4") == 14
        assert self._flops("(2 + 3) * 4") == 20
        assert self._flops("10 - 3") == 7

    def test_int_division_truncates(self):
        assert self._flops("7 / 2") == 3
        assert self._flops("7.0 / 2") == 3.5

    def test_modulo(self):
        assert self._flops("7 % 3") == 1

    def test_rank_and_nprocs(self):
        assert self._flops("rank * 10 + nprocs", rank=3, nprocs=8) == 38

    def test_params(self):
        assert self._flops("n * 2", params={"n": 21}) == 42

    def test_builtins(self):
        assert self._flops("min(3, 5) + max(3, 5)") == 8
        assert self._flops("log2(8)") == 3
        assert self._flops("sqrt(16)") == 4
        assert self._flops("pow(2, 5)") == 32
        assert self._flops("floor(2.7) + ceil(2.1)") == 5
        assert self._flops("abs(0 - 4)") == 4

    def test_hashrand_deterministic_and_bounded(self):
        a = self._flops("1000000 * hashrand(rank, 7)", rank=3)
        b = self._flops("1000000 * hashrand(rank, 7)", rank=3)
        c = self._flops("1000000 * hashrand(rank, 7)", rank=4)
        assert a == b
        assert a != c
        assert 0 <= a < 1_000_000

    def test_division_by_zero(self):
        with pytest.raises(SimulationError, match="division by zero"):
            self._flops("1 / 0")

    def test_undefined_variable(self):
        with pytest.raises(SimulationError, match="undefined variable"):
            self._flops("nope")


class TestControlFlow:
    def test_for_loop_iterations(self):
        result = run_ops(
            "def main() { for (var i = 0; i < 5; i = i + 1) {"
            " compute(flops = i); } }"
        )
        flops = [o.workload.flops for o in result]
        assert flops == [0, 1, 2, 3, 4]

    def test_while_loop(self):
        result = run_ops(
            "def main() { var x = 8; while (x > 1) { compute(flops = x);"
            " x = x / 2; } }"
        )
        assert [o.workload.flops for o in result] == [8, 4, 2]

    def test_if_branch_taken_by_rank(self):
        src = (
            "def main() { if (rank == 0) { compute(flops = 1); }"
            " else { compute(flops = 2); } }"
        )
        assert first_compute(src, rank=0).workload.flops == 1
        assert first_compute(src, rank=1).workload.flops == 2

    def test_short_circuit_and(self):
        # (x != 0 && 1/x > 0) must not divide by zero when x == 0
        result = run_ops(
            "def main() { var x = 0; if (x != 0 && 1 / x > 0) {"
            " compute(flops = 1); } barrier(); }"
        )
        assert not any(isinstance(o, ops.ComputeOp) for o in result)

    def test_return_stops_function(self):
        result = run_ops(
            "def main() { compute(flops = 1); return; compute(flops = 2); }"
        )
        assert len([o for o in result if isinstance(o, ops.ComputeOp)]) == 1

    def test_function_call_and_args(self):
        result = run_ops(
            "def main() { work(5); work(7); }"
            "def work(n) { compute(flops = n); }"
        )
        assert [o.workload.flops for o in result] == [5, 7]

    def test_recursion(self):
        result = run_ops(
            "def main() { f(4); }"
            "def f(n) { if (n > 0) { compute(flops = n); f(n - 1); } }"
        )
        assert [o.workload.flops for o in result] == [4, 3, 2, 1]

    def test_indirect_call_note_emitted(self):
        result = run_ops(
            "def main() { var f = &h; f(); }"
            "def h() { compute(flops = 9); }"
        )
        notes = [o for o in result if isinstance(o, ops.IndirectCallNote)]
        assert len(notes) == 1
        assert notes[0].target == "h"
        assert any(
            isinstance(o, ops.ComputeOp) and o.workload.flops == 9 for o in result
        )

    def test_iteration_limit(self):
        with pytest.raises(IterationLimitError):
            run_ops(
                "def main() { while (true) { compute(flops = 1); } }",
                max_iterations=100,
            )

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(SimulationError, match="undeclared"):
            run_ops("def main() { x = 1; }")

    def test_call_to_undefined_function(self):
        with pytest.raises(SimulationError, match="not a function|undefined"):
            run_ops("def main() { ghost(); }")

    def test_wrong_arity(self):
        with pytest.raises(SimulationError, match="takes 1 arguments"):
            run_ops("def main() { f(); } def f(a) { }")


class TestMpiOpEmission:
    def test_send_fields(self):
        (op,) = [
            o for o in run_ops(
                "def main() { if (rank == 0) { send(dest = 1, tag = 3, bytes = 100); } }"
            )
            if isinstance(o, ops.SendOp)
        ]
        assert (op.dest, op.tag, op.nbytes) == (1, 3, 100)
        assert op.blocking

    def test_sendrecv_emits_send_then_recv(self):
        result = run_ops(
            "def main() { sendrecv(dest = 1, tag = 1, bytes = 8, src = 1); }"
        )
        assert isinstance(result[0], ops.SendOp)
        assert isinstance(result[1], ops.RecvOp)
        assert result[0].vid == result[1].vid
        assert not result[0].blocking

    def test_any_wildcards(self):
        (op,) = [
            o for o in run_ops("def main() { recv(src = ANY, tag = ANY); }", nprocs=2)
            if isinstance(o, ops.RecvOp)
        ]
        assert op.src is ops.ANY and op.tag is ops.ANY

    def test_dest_out_of_range(self):
        with pytest.raises(MpiUsageError, match="out of range"):
            run_ops("def main() { send(dest = 5, tag = 1, bytes = 8); }", nprocs=2)

    def test_negative_tag_rejected(self):
        with pytest.raises(MpiUsageError, match="non-negative"):
            run_ops("def main() { send(dest = 1, tag = 0 - 1, bytes = 8); }")

    def test_any_as_send_tag_rejected(self):
        with pytest.raises(MpiUsageError, match="not a valid send tag"):
            run_ops("def main() { send(dest = 1, tag = ANY, bytes = 8); }")

    def test_float_dest_rejected(self):
        with pytest.raises(MpiUsageError, match="integer rank"):
            run_ops("def main() { send(dest = 1.5, tag = 1, bytes = 8); }")

    def test_negative_bytes_rejected(self):
        with pytest.raises(MpiUsageError, match="non-negative"):
            run_ops("def main() { send(dest = 1, tag = 1, bytes = 0 - 8); }")

    def test_collective_root_default_zero(self):
        (op,) = [
            o for o in run_ops("def main() { allreduce(bytes = 8); }")
            if isinstance(o, ops.CollectiveOp)
        ]
        assert op.root == 0

    def test_entry_with_params_rejected(self):
        prog = parse_program("def main(x) { }")
        psg = build_psg(prog).psg
        with pytest.raises(SimulationError, match="no arguments"):
            list(Interpreter(prog, psg, 0, 1).run())

    def test_rank_out_of_range_rejected(self):
        prog = parse_program("def main() { }")
        psg = build_psg(prog).psg
        with pytest.raises(ValueError):
            Interpreter(prog, psg, 5, 2)
