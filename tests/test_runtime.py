"""Runtime layer tests: sampling profiler, interposition, accounting."""


import pytest

from repro.runtime import (
    collect_comm_dependence,
    exact_profile,
    profiler_costs,
    sample_result,
    scalana_costs,
    tracer_costs,
)
from tests.conftest import profile_source, run_source

LONG_COMPUTE = """def main() {
    compute(flops = 2000000000, name = "big");
    allreduce(bytes = 8);
}"""

LOOPY = """def main() {
    for (var i = 0; i < 50; i = i + 1) {
        compute(flops = 20000000, name = "hot");
        sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 1024,
                 src = (rank - 1 + nprocs) % nprocs);
        compute(flops = 200000, name = "cold");
    }
}"""


class TestSampling:
    def test_long_vertex_sampled_accurately(self):
        res, psg, _ = run_source(LONG_COMPUTE, nprocs=2)
        prof = sample_result(res, freq_hz=200.0)
        big = [v for v in psg.vertices.values() if v.name == "big"][0]
        for rank in range(2):
            exact = res.vertex_time[(rank, big.vid)]
            sampled = prof.vector(rank, big.vid).time
            assert sampled == pytest.approx(exact, rel=0.02)

    def test_total_samples_close_to_time_times_freq(self):
        res, _, _ = run_source(LONG_COMPUTE, nprocs=2)
        prof = sample_result(res, freq_hz=200.0)
        expected = sum(res.finish_times) * 200.0
        assert prof.total_samples == pytest.approx(expected, rel=0.05)

    def test_sampling_error_shrinks_with_frequency(self):
        res, psg, _ = run_source(LOOPY, nprocs=2)
        hot = [v for v in psg.vertices.values() if v.name == "hot"][0]
        exact = res.vertex_time[(0, hot.vid)]
        errors = []
        for freq in (50.0, 5000.0):
            prof = sample_result(res, freq)
            errors.append(abs(prof.vector(0, hot.vid).time - exact) / exact)
        assert errors[1] < errors[0]

    def test_short_vertices_may_be_missed_at_low_freq(self):
        res, psg, _ = run_source(LOOPY, nprocs=2)
        cold = [v for v in psg.vertices.values() if v.name == "cold"][0]
        prof = sample_result(res, freq_hz=20.0)
        exact = res.vertex_time[(0, cold.vid)]
        # "cold" is ~1% of runtime: at 20 Hz attribution error is large
        sampled = prof.vector(0, cold.vid).time
        assert sampled != pytest.approx(exact, rel=0.01)

    def test_counters_attributed_proportionally(self):
        res, psg, _ = run_source(LONG_COMPUTE, nprocs=1)
        prof = sample_result(res, freq_hz=1000.0)
        big = [v for v in psg.vertices.values() if v.name == "big"][0]
        vec = prof.vector(0, big.vid)
        exact = res.vertex_counters[(0, big.vid)]
        assert vec.counters.tot_ins == pytest.approx(exact.tot_ins, rel=0.02)

    def test_wait_time_attributed(self):
        src = """def main() {
            if (rank == 0) { compute(flops = 2000000000); }
            allreduce(bytes = 8);
        }"""
        res, psg, _ = run_source(src, nprocs=2)
        prof = sample_result(res, freq_hz=500.0)
        allr = [v for v in psg.mpi_vertices() if v.name == "MPI_Allreduce"][0]
        assert prof.vector(1, allr.vid).wait == pytest.approx(1.0, rel=0.05)

    def test_invalid_freq_rejected(self):
        res, _, _ = run_source(LONG_COMPUTE, nprocs=1)
        with pytest.raises(ValueError):
            sample_result(res, freq_hz=0)

    def test_needs_segments(self):
        res, _, _ = run_source(LONG_COMPUTE, nprocs=1, record_segments=False)
        with pytest.raises(ValueError, match="segment recording"):
            sample_result(res, 200.0)

    def test_exact_profile_matches_ground_truth(self):
        res, psg, _ = run_source(LOOPY, nprocs=2)
        prof = exact_profile(res)
        for (rank, vid), t in res.vertex_time.items():
            assert prof.vector(rank, vid).time == pytest.approx(t)

    def test_vertex_times_vector_shape(self):
        res, psg, _ = run_source(LOOPY, nprocs=4)
        prof = sample_result(res, 200.0)
        hot = [v for v in psg.vertices.values() if v.name == "hot"][0]
        assert len(prof.vertex_times(hot.vid)) == 4


class TestInterposition:
    def test_compression_deduplicates_loop_iterations(self):
        res, _, _ = run_source(LOOPY, nprocs=4)
        dep = collect_comm_dependence(res)
        # 50 iterations x 4 ranks of identical sendrecv -> few unique edges
        assert dep.observed_events == len(res.p2p_records) + len(res.collective_records)
        assert len(dep.edges) <= 8
        assert dep.compression_ratio > 20

    def test_edge_stats_count_and_wait(self):
        res, _, _ = run_source(LOOPY, nprocs=2)
        dep = collect_comm_dependence(res)
        total_count = sum(c for c, _w in dep.edge_stats.values())
        assert total_count == len(res.p2p_records)

    def test_sampling_probability_reduces_records(self):
        res, _, _ = run_source(LOOPY, nprocs=4)
        full = collect_comm_dependence(res, sample_probability=1.0)
        sampled = collect_comm_dependence(res, sample_probability=0.2, seed=3)
        assert sampled.recorded_events < full.recorded_events
        # regular patterns still captured: same unique edges (high probability)
        assert len(sampled.edges) >= 0.5 * len(full.edges)

    def test_sampling_probability_validated(self):
        res, _, _ = run_source(LOOPY, nprocs=2)
        with pytest.raises(ValueError):
            collect_comm_dependence(res, sample_probability=0.0)
        with pytest.raises(ValueError):
            collect_comm_dependence(res, sample_probability=1.5)

    def test_wildcard_resolution_fig5(self):
        """Fig. 5: irecv(ANY) resolved from status at wait time."""
        src = """def main() {
            if (rank == 0) {
                irecv(src = ANY, tag = ANY, req = r);
                wait(req = r);
            } else {
                send(dest = 0, tag = 9, bytes = 64);
            }
        }"""
        res, _, _ = run_source(src, nprocs=2)
        dep = collect_comm_dependence(res)
        (edge,) = dep.edges.values()
        assert edge.send_rank == 1  # resolved true source
        assert edge.tag == 9  # resolved true tag

    def test_collective_groups_deduplicated(self):
        src = """def main() {
            for (var i = 0; i < 30; i = i + 1) { allreduce(bytes = 8); }
        }"""
        res, _, _ = run_source(src, nprocs=4)
        dep = collect_comm_dependence(res)
        assert len(dep.groups) == 1
        count, _w, _l = dep.group_stats[next(iter(dep.groups))]
        assert count == 30

    def test_collective_laggard_recorded(self):
        src = """def main() {
            if (rank == 3) { compute(flops = 1000000000); }
            allreduce(bytes = 8);
        }"""
        res, _, _ = run_source(src, nprocs=4)
        dep = collect_comm_dependence(res)
        (_count, max_wait, laggard) = dep.group_stats[next(iter(dep.groups))]
        assert laggard == 3
        assert max_wait > 0.1

    def test_indirect_targets_collected(self):
        src = """def main() {
            var f = &worker;
            f();
        }
        def worker() { compute(flops = 1000); barrier(); }"""
        res, _, _ = run_source(src, nprocs=2)
        dep = collect_comm_dependence(res)
        assert len(dep.indirect_targets) == 1
        assert set(dep.indirect_targets.values().__iter__().__next__()) == {"worker"}


class TestAccounting:
    def test_scalana_cheaper_than_tracer(self):
        run, psg, _ = profile_source(LOOPY, nprocs=4)
        res = run.result
        events = 2 * (res.compute_count + res.mpi_call_count)
        from repro.simulator.events import SegmentKind

        compute_seconds = sum(
            s.duration for s in res.segments if s.kind is SegmentKind.COMPUTE
        )
        tr = tracer_costs(app_time=res.total_time, nprocs=4,
                          mpi_events=res.mpi_call_count, region_events=events,
                          compute_seconds=compute_seconds)
        assert run.overhead.overhead_seconds < tr.overhead_seconds
        assert run.overhead.storage_bytes < tr.storage_bytes

    def test_overhead_percent(self):
        run, _, _ = profile_source(LOOPY, nprocs=2)
        assert run.overhead.overhead_percent == pytest.approx(
            100 * run.overhead.overhead_seconds / run.app_time
        )

    def test_profiler_storage_scales_with_ranks(self):
        a = profiler_costs(app_time=1, nprocs=4, total_samples=100,
                           unique_callpaths_per_rank=20)
        b = profiler_costs(app_time=1, nprocs=8, total_samples=100,
                           unique_callpaths_per_rank=20)
        assert b.storage_bytes == pytest.approx(2 * a.storage_bytes)

    def test_scalana_storage_components(self):
        rep = scalana_costs(
            app_time=1.0, nprocs=2, total_samples=0, mpi_calls=0,
            recorded_comm_events=0, unique_edges=0, unique_groups=0,
            group_member_ranks=0, psg_vertices=100, sampled_vertex_vectors=0,
        )
        assert rep.storage_bytes >= 100 * 32  # paper: 32 B per vertex

    def test_zero_app_time_fraction(self):
        rep = scalana_costs(
            app_time=0.0, nprocs=1, total_samples=0, mpi_calls=0,
            recorded_comm_events=0, unique_edges=0, unique_groups=0,
            group_member_ranks=0, psg_vertices=0, sampled_vertex_vectors=0,
        )
        assert rep.overhead_fraction == 0.0


class TestProfileRun:
    def test_profile_run_bundles_everything(self):
        run, psg, _ = profile_source(LOOPY, nprocs=4)
        assert run.nprocs == 4
        assert run.profile.total_samples > 0
        assert len(run.comm.edges) > 0
        assert run.overhead.tool == "ScalAna"
        assert run.app_time == run.result.total_time
