"""End-to-end case studies (paper §VI-D): ScalAna must diagnose each app's
ground-truth root cause, and the paper's fix must remove it."""

import pytest

from repro import ScalAna
from repro.apps import get_app
from repro.psg.graph import VertexType

SCALES = (4, 8, 16, 32)


def diagnose(app_name, scales=SCALES):
    spec = get_app(app_name)
    tool = ScalAna.for_app(spec, seed=2)
    runs = tool.profile_scales([p for p in scales if spec.nprocs_valid(p)])
    report = tool.detect(runs)
    return tool, report


@pytest.fixture(scope="module")
def zeusmp_report():
    return diagnose("zeusmp")


@pytest.fixture(scope="module")
def sst_report():
    return diagnose("sst")


@pytest.fixture(scope="module")
def nekbone_report():
    return diagnose("nekbone")


class TestZeusMP:
    """Fig. 12: allreduce symptom <- waitall chain <- bval3d boundary loop."""

    def test_root_cause_is_bval_loop(self, zeusmp_report):
        _tool, report = zeusmp_report
        assert report.root_causes
        top = report.root_causes[0]
        assert top.function in ("bval3d", "main")
        assert "bval" in top.label or "bval3d" in top.function

    def test_symptom_is_mpi_vertex(self, zeusmp_report):
        _tool, report = zeusmp_report
        top = report.root_causes[0]
        assert top.symptom_label.startswith(("MPI_", "Comp", "Loop"))
        mpi_symptoms = [
            rc for rc in report.root_causes if rc.symptom_label.startswith("MPI_")
        ]
        assert mpi_symptoms  # waitall / allreduce show up as symptoms

    def test_path_crosses_ranks(self, zeusmp_report):
        _tool, report = zeusmp_report
        assert any(len(rc.path_ranks) >= 2 for rc in report.root_causes)

    def test_allreduce_nonscalable_or_abnormal(self, zeusmp_report):
        tool, report = zeusmp_report
        psg = tool.psg
        flagged = {psg.vertices[v.vid].label for v in report.non_scalable}
        flagged |= {psg.vertices[v.vid].label for v in report.abnormal}
        assert any(lab.startswith("MPI_") for lab in flagged)

    def test_fix_improves_every_scale(self):
        base_spec = get_app("zeusmp")
        fixed_spec = get_app("zeusmp_fixed")
        base = ScalAna.for_app(base_spec, seed=2)
        fixed = ScalAna.for_app(fixed_spec, seed=2)
        for p in (8, 32):
            tb = base.run_uninstrumented(p).total_time
            tf = fixed.run_uninstrumented(p).total_time
            assert tf < tb

    def test_fix_removes_bval_imbalance(self):
        _tool, fixed_report = diagnose("zeusmp_fixed")
        _tool2, base_report = diagnose("zeusmp")
        base_imb = max(
            (rc.imbalance for rc in base_report.root_causes), default=1.0
        )
        fixed_imb = max(
            (rc.imbalance for rc in fixed_report.root_causes), default=1.0
        )
        assert fixed_imb <= base_imb


class TestSST:
    """Fig. 14: allreduce <- waitall <- handleEvent pending-scan loop."""

    def test_root_cause_in_handle_event(self, sst_report):
        _tool, report = sst_report
        assert report.root_causes
        top = report.root_causes[0]
        assert top.function == "handle_event"

    def test_scan_vertex_abnormal(self, sst_report):
        tool, report = sst_report
        psg = tool.psg
        abnormal_funcs = {psg.vertices[v.vid].function for v in report.abnormal}
        assert "handle_event" in abnormal_funcs

    def test_tot_ins_rebalanced_by_fix(self):
        """Fig. 15: TOT_INS drops ~99.9% and balances across ranks."""
        spec = get_app("sst")
        fixed = get_app("sst_fixed")
        tool_b = ScalAna.for_app(spec, seed=2)
        tool_f = ScalAna.for_app(fixed, seed=2)
        rb = tool_b.run_uninstrumented(16)
        rf = tool_f.run_uninstrumented(16)
        scan = [
            v for v in spec.psg.vertices.values()
            if v.function == "handle_event" and v.vtype is VertexType.COMP
        ][0]
        ins_b = [rb.vertex_counters[(r, scan.vid)].tot_ins for r in range(16)]
        ins_f = [rf.vertex_counters[(r, scan.vid)].tot_ins for r in range(16)]
        reduction = 1.0 - sum(ins_f) / sum(ins_b)
        assert reduction > 0.95  # paper: 99.92%
        # and the remaining instruction counts are far more balanced
        imb_b = max(ins_b) / min(ins_b)
        imb_f = max(ins_f) / min(ins_f)
        assert imb_f < imb_b

    def test_fix_speedup_shape(self):
        """Paper: 32-rank speedup 1.20x -> 1.56x (vs 4 ranks)."""
        base = ScalAna.for_app(get_app("sst"), seed=2)
        fixed = ScalAna.for_app(get_app("sst_fixed"), seed=2)
        sp_base = (
            base.run_uninstrumented(4).total_time
            / base.run_uninstrumented(32).total_time
        )
        sp_fixed = (
            fixed.run_uninstrumented(4).total_time
            / fixed.run_uninstrumented(32).total_time
        )
        assert sp_fixed > sp_base


class TestNekbone:
    """comm.h waitall <- dgemm loop; per-core memory speed variance."""

    def test_root_cause_is_dgemm(self, nekbone_report):
        _tool, report = nekbone_report
        assert report.root_causes
        funcs = [rc.function for rc in report.root_causes[:3]]
        assert "ax" in funcs

    def test_waitall_flagged(self, nekbone_report):
        tool, report = nekbone_report
        psg = tool.psg
        flagged = {psg.vertices[v.vid].label for v in report.non_scalable}
        flagged |= {psg.vertices[v.vid].label for v in report.abnormal}
        assert any("Wait" in lab or "Allreduce" in lab for lab in flagged)

    def test_fix_reduces_lst_ins_and_variance(self):
        """Fig. 16: TOT_LST_INS -89.78%, time variance -94.03%."""
        import numpy as np

        spec = get_app("nekbone")
        tool_b = ScalAna.for_app(spec, seed=2)
        tool_f = ScalAna.for_app(get_app("nekbone_fixed"), seed=2)
        rb = tool_b.run_uninstrumented(16)
        rf = tool_f.run_uninstrumented(16)
        dgemm = [
            v for v in spec.psg.vertices.values()
            if v.function == "ax" and v.vtype is VertexType.COMP
        ][0]
        lst_b = sum(rb.vertex_counters[(r, dgemm.vid)].tot_lst_ins for r in range(16))
        lst_f = sum(rf.vertex_counters[(r, dgemm.vid)].tot_lst_ins for r in range(16))
        assert 1.0 - lst_f / lst_b > 0.8  # paper: 89.78%
        var_b = np.var([rb.vertex_time[(r, dgemm.vid)] for r in range(16)])
        var_f = np.var([rf.vertex_time[(r, dgemm.vid)] for r in range(16)])
        assert var_f < 0.3 * var_b  # paper: 94% variance reduction

    def test_fix_speedup_shape(self):
        base = ScalAna.for_app(get_app("nekbone"), seed=2)
        fixed = ScalAna.for_app(get_app("nekbone_fixed"), seed=2)
        for p in (16, 32):
            assert (
                fixed.run_uninstrumented(p).total_time
                < base.run_uninstrumented(p).total_time
            )
