"""CFG construction tests."""


from repro.ir.cfg import build_cfg
from repro.minilang import ast_nodes as ast
from repro.minilang.parser import parse_program


def cfg_of(body: str, name: str = "main"):
    prog = parse_program(f"def {name}() {{ {body} }}")
    return build_cfg(prog.function(name))


class TestStraightLine:
    def test_empty_function(self):
        cfg = cfg_of("")
        assert cfg.entry.successors == [cfg.exit.block_id]
        assert cfg.exit.block_id in cfg.reachable_blocks()

    def test_simple_statements_accumulate(self):
        cfg = cfg_of("var x = 1; x = 2; compute(flops = 1);")
        assert len(cfg.entry.statements) == 3

    def test_return_edges_to_exit(self):
        cfg = cfg_of("return;")
        assert cfg.exit.block_id in cfg.entry.successors

    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of("return; compute(flops = 1);")
        reach = cfg.reachable_blocks()
        unreachable = [b for b in cfg.blocks.values() if b.block_id not in reach]
        assert any(b.statements for b in unreachable)


class TestIf:
    def test_if_has_two_successors(self):
        cfg = cfg_of("if (rank == 0) { compute(flops = 1); }")
        assert len(cfg.entry.successors) == 2
        assert isinstance(cfg.entry.terminator, ast.IfStmt)

    def test_if_else_joins(self):
        cfg = cfg_of(
            "if (rank == 0) { compute(flops = 1); } else { compute(flops = 2); }"
            " compute(flops = 3);"
        )
        # both arms must reach the join block holding the trailing compute
        join_blocks = [b for b in cfg.blocks.values() if b.role == "join"]
        assert len(join_blocks) == 1
        assert len(join_blocks[0].predecessors) == 2

    def test_return_in_then_arm(self):
        cfg = cfg_of("if (rank == 0) { return; } compute(flops = 1);")
        # then-arm flows to exit, not to join
        join = [b for b in cfg.blocks.values() if b.role == "join"][0]
        then = [b for b in cfg.blocks.values() if b.role == "then"][0]
        assert join.block_id not in then.successors


class TestLoops:
    def test_for_creates_header_with_backedge(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { compute(flops = 1); }")
        headers = cfg.loop_headers()
        assert len(headers) == 1
        header = headers[0]
        assert len(header.successors) == 2  # body + exit
        # some block loops back to the header
        assert any(
            header.block_id in b.successors
            for b in cfg.blocks.values()
            if b.block_id != cfg.entry.block_id
        )

    def test_for_init_in_preheader(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { }")
        assert any(isinstance(s, ast.VarDecl) for s in cfg.entry.statements)

    def test_while_header(self):
        cfg = cfg_of("while (rank < 2) { compute(flops = 1); }")
        assert len(cfg.loop_headers()) == 1

    def test_nested_loops_two_headers(self):
        cfg = cfg_of(
            "for (var i = 0; i < 2; i = i + 1) {"
            "  for (var j = 0; j < 2; j = j + 1) { compute(flops = 1); }"
            "}"
        )
        assert len(cfg.loop_headers()) == 2

    def test_statement_count(self):
        cfg = cfg_of("var x = 1; if (x == 1) { x = 2; }")
        # var decl + assign + the if terminator
        assert cfg.statement_count() == 3


class TestGraphQueries:
    def test_edge_list_consistent_with_preds(self):
        cfg = cfg_of("if (rank == 0) { compute(flops = 1); } barrier();")
        for src, dst in cfg.edge_list():
            assert src in cfg.blocks[dst].predecessors

    def test_all_blocks_reachable_in_simple_program(self):
        cfg = cfg_of("compute(flops = 1); barrier();")
        assert cfg.reachable_blocks() == set(cfg.blocks)
