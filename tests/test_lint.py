"""Static MPI lint: every rule's trigger + near-miss, spans, severities.

Acceptance shape (ISSUE 6): the lint statically flags a corpus of known
deadlocks/mismatches with correct source spans and produces **zero
findings on every bundled application** at valid scales — the
no-false-positive gate.  Also covers the JSON export, the CLI exit
codes, and the ``lint_fail_fast`` pipeline knob.
"""

import json

import pytest

from repro.analysis import LintError, Severity, run_lint
from repro.api import AnalysisConfig, Pipeline
from repro.apps import APPS, get_app
from repro.minilang import parse_program
from repro.psg import build_psg


def lint(source, nprocs=4, params=None):
    program = parse_program(source, "t.mm")
    psg = build_psg(program).psg
    return run_lint(program, psg, nprocs, params)


def only(report, rule):
    """The single finding a trigger program is expected to produce."""
    assert [f.rule for f in report.findings] == [rule], report.render()
    return report.findings[0]


class TestTriggers:
    def test_unmatched_recv(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        recv(src = 1, tag = 5);
                    }
                }
                """
            ),
            "unmatched-recv",
        )
        assert f.severity is Severity.ERROR
        assert (f.location.line, f.location.column) == (4, 0) or f.location.line == 4
        assert f.ranks == (0,)
        assert "never" in f.message

    def test_tag_mismatch_points_at_both_sides(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        recv(src = 1, tag = 5);
                    }
                    if (rank == 1) {
                        send(dest = 0, tag = 6, bytes = 8);
                    }
                }
                """
            ),
            "tag-mismatch",
        )
        assert f.severity is Severity.ERROR
        assert f.location.line == 4
        assert [loc.line for loc in f.related] == [7]

    def test_collective_mismatch(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        barrier();
                    } else {
                        allreduce(bytes = 8);
                    }
                }
                """
            ),
            "collective-mismatch",
        )
        assert f.severity is Severity.ERROR
        assert f.ranks == (0, 1, 2, 3)

    def test_root_mismatch(self):
        f = only(
            lint("def main() {\n    bcast(root = rank % 2, bytes = 8);\n}\n"),
            "root-mismatch",
        )
        assert f.severity is Severity.ERROR
        assert f.location.line == 2

    def test_collective_divergence(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank < 2) {
                        barrier();
                    }
                }
                """
            ),
            "collective-divergence",
        )
        assert f.severity is Severity.ERROR
        assert f.ranks == (0, 1)  # the waiting ranks, not the departed ones

    def test_self_send_deadlock(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        send(dest = 0, tag = 1, bytes = 8);
                        recv(src = 0, tag = 1);
                    }
                }
                """
            ),
            "self-send-deadlock",
        )
        assert f.severity is Severity.ERROR
        assert f.location.line == 4

    def test_send_send_cycle(self):
        f = only(
            lint(
                """
                def main() {
                    send(dest = (rank + 1) % nprocs, tag = 1, bytes = 1048576);
                    recv(src = (rank - 1 + nprocs) % nprocs, tag = 1);
                }
                """
            ),
            "send-send-cycle",
        )
        assert f.severity is Severity.WARNING
        assert f.ranks == (0, 1, 2, 3)
        assert "0 -> 1 -> 2 -> 3 -> 0" in f.message

    def test_wildcard_recv_single_sender(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        recv(src = ANY, tag = 1);
                    }
                    if (rank == 1) {
                        send(dest = 0, tag = 1, bytes = 8);
                    }
                }
                """
            ),
            "wildcard-recv",
        )
        assert f.severity is Severity.INFO

    def test_unmatched_send(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 1) {
                        send(dest = 0, tag = 3, bytes = 8);
                    }
                    barrier();
                }
                """
            ),
            "unmatched-send",
        )
        assert f.severity is Severity.WARNING
        assert f.ranks == (1,)

    def test_exec_error_recovers_span_from_message(self):
        f = only(
            lint("def main() {\n    send(dest = nprocs, tag = 1, bytes = 8);\n}\n"),
            "exec-error",
        )
        assert f.severity is Severity.ERROR
        assert "out of range" in f.message

    def test_wildcard_counting_deficit_is_proven(self):
        # 4 wildcard receives, only 3 senders: no matching can ever
        # satisfy them all — the bipartite counting proof must fire even
        # though each individual receive could match
        report = lint(
            """
            def main() {
                if (rank == 0) {
                    for (var i = 0; i < nprocs; i = i + 1) {
                        recv(src = ANY, tag = 2);
                    }
                } else {
                    send(dest = 0, tag = 2, bytes = 8);
                }
            }
            """
        )
        assert any(f.rule == "unmatched-recv" for f in report.findings)
        assert not report.ok

    def test_request_leak_isend(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        isend(dest = 1, tag = 1, bytes = 8, req = s);
                    }
                    if (rank == 1) {
                        recv(src = 0, tag = 1);
                    }
                }
                """
            ),
            "request-leak",
        )
        assert f.severity is Severity.WARNING
        assert f.location.line == 4
        assert f.ranks == (0,)
        assert "isend" in f.message and "'s'" in f.message

    def test_request_leak_irecv(self):
        # the irecv matches (so no unmatched-recv) but its request is
        # never observed by any wait/waitall
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        irecv(src = 1, tag = 1, req = r);
                    }
                    if (rank == 1) {
                        send(dest = 0, tag = 1, bytes = 8);
                    }
                    barrier();
                }
                """
            ),
            "request-leak",
        )
        assert f.severity is Severity.WARNING
        assert f.location.line == 4
        assert "irecv" in f.message

    def test_double_wait_same_request(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        isend(dest = 1, tag = 1, bytes = 8, req = s);
                        wait(req = s);
                        wait(req = s);
                    }
                    if (rank == 1) {
                        recv(src = 0, tag = 1);
                    }
                }
                """
            ),
            "double-wait",
        )
        assert f.severity is Severity.ERROR
        assert f.location.line == 6
        assert f.ranks == (0,)
        assert "already completed" in f.message
        # the related span points at the wait that consumed the request
        assert [loc.line for loc in f.related] == [5]

    def test_double_wait_never_posted(self):
        f = only(
            lint(
                """
                def main() {
                    if (rank == 0) {
                        wait(req = zz);
                    }
                }
                """
            ),
            "double-wait",
        )
        assert f.severity is Severity.ERROR
        assert f.location.line == 4
        assert "no isend/irecv" in f.message
        assert f.related == ()


class TestNearMisses:
    """Correct variants of each trigger must stay silent (no false
    positives)."""

    CLEAN = {
        "ring": """
            def main() {
                sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 64,
                         src = (rank - 1 + nprocs) % nprocs);
                allreduce(bytes = 8);
            }
        """,
        # matched tags: the tag-mismatch near-miss
        "matched_pair": """
            def main() {
                if (rank == 0) {
                    recv(src = 1, tag = 5);
                }
                if (rank == 1) {
                    send(dest = 0, tag = 5, bytes = 8);
                }
            }
        """,
        # same collective, same root on all ranks
        "uniform_bcast": """
            def main() {
                bcast(root = 0, bytes = 8);
            }
        """,
        # all ranks reach the barrier (collective-divergence near-miss)
        "both_arms_barrier": """
            def main() {
                if (rank < 2) {
                    barrier();
                } else {
                    barrier();
                }
            }
        """,
        # isend to self is fine: nonblocking breaks the self-send rule
        "isend_self": """
            def main() {
                isend(dest = rank, tag = 1, bytes = 8, req = s);
                irecv(src = rank, tag = 1, req = r);
                waitall();
            }
        """,
        # ring via sendrecv: the send-send-cycle near-miss
        "sendrecv_ring": """
            def main() {
                sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 1048576,
                         src = (rank - 1 + nprocs) % nprocs);
            }
        """,
        # every request waited exactly once: request-leak/double-wait
        # near-miss (per-name FIFO: two irecvs under one name, two waits)
        "request_fifo": """
            def main() {
                isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 8, req = s);
                irecv(src = (rank - 1 + nprocs) % nprocs, tag = 1, req = r);
                irecv(src = (rank - 1 + nprocs) % nprocs, tag = 2, req = r);
                isend(dest = (rank + 1) % nprocs, tag = 2, bytes = 8, req = s2);
                wait(req = r);
                wait(req = r);
                wait(req = s);
                wait(req = s2);
            }
        """,
        # waitall completes every outstanding request (leak near-miss)
        "waitall_completes_all": """
            def main() {
                isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 8, req = s);
                irecv(src = (rank - 1 + nprocs) % nprocs, tag = 1, req = r);
                waitall();
            }
        """,
    }

    #: Enough senders for every wildcard receive (fan-in, nprocs - 1): the
    #: unmatched-recv counting near-miss.  Not in CLEAN because the match-
    #: order analysis now (correctly) reports the senders as racing — see
    #: TestMatchOrderRules.test_fan_in_is_counting_clean_but_racy.
    WILDCARD_FAN_IN = """
        def main() {
            if (rank == 0) {
                for (var i = 1; i < nprocs; i = i + 1) {
                    recv(src = ANY, tag = 2);
                }
            } else {
                send(dest = 0, tag = 2, bytes = 8);
            }
        }
    """

    @pytest.mark.parametrize("name", sorted(CLEAN))
    def test_clean(self, name):
        report = lint(self.CLEAN[name])
        assert report.findings == (), report.render()
        assert report.ok


class TestMatchOrderRules:
    """The PR 10 wildcard split: ``wildcard-race`` (two or more feasible
    senders, timing decides) vs the refined ``wildcard-recv`` info for
    receives the match-order analysis proves deterministic."""

    #: senders in distinct epochs (unconditional barrier between them):
    #: the first receive is proven match-deterministic
    TWO_PHASE = """
        def main() {
            if (rank == 1) { send(dest = 0, tag = 5, bytes = 8); }
            if (rank == 0) { recv(src = ANY, tag = 5); }
            barrier();
            if (rank == 2) { send(dest = 0, tag = 5, bytes = 8); }
            if (rank == 0) { recv(src = ANY, tag = 5); }
        }
    """

    def test_fan_in_is_counting_clean_but_racy(self):
        report = lint(TestNearMisses.WILDCARD_FAN_IN)
        assert not any(f.rule == "unmatched-recv" for f in report.findings)
        (f,) = [f for f in report.findings if f.rule == "wildcard-race"]
        assert f.severity is Severity.WARNING
        assert f.ranks == (0,)
        assert "3 feasible senders" in f.message  # nprocs=4 -> ranks 1,2,3
        # related spans name the racing sends
        assert [loc.line for loc in f.related] == [8]
        assert report.ok  # a race is a warning, never an error

    def test_wildcard_race_near_miss_epoch_separated(self):
        """The same two-sender shape, but with an unconditional barrier
        between the sends: the first receive must NOT be reported racing
        — it is downgraded to the proven-deterministic info."""
        report = lint(self.TWO_PHASE)
        by_line = {}
        for f in report.findings:
            by_line.setdefault(f.location.line, []).append(f)
        (first,) = by_line[4]
        assert first.rule == "wildcard-recv"
        assert first.severity is Severity.INFO
        assert "proven match-deterministic" in first.message
        # the related span names the unique matcher (rank 1's send, line 3)
        assert any("t.mm:3" in str(loc) for loc in first.related)
        (second,) = by_line[7]
        assert second.rule == "wildcard-race"
        assert second.severity is Severity.WARNING
        assert "2 feasible senders" in second.message

    def test_single_sender_keeps_legacy_info(self):
        """<= 1 stream-level sender never consults the match-order
        analysis: the over-broad-wildcard wording is unchanged."""
        report = lint(
            """
            def main() {
                if (rank == 0) {
                    recv(src = ANY, tag = 1);
                }
                if (rank == 1) {
                    send(dest = 0, tag = 1, bytes = 8);
                }
            }
            """
        )
        (f,) = report.findings
        assert f.rule == "wildcard-recv"
        assert f.severity is Severity.INFO
        assert "only rank 1 ever sends" in f.message

    def test_race_survives_cross_scale_lint(self):
        from repro.analysis import run_lint_scales

        program = parse_program(TestNearMisses.WILDCARD_FAN_IN, "t.mm")
        psg = build_psg(program).psg
        report = run_lint_scales(program, psg, "4..16")
        for p, rep in report.reports.items():
            rules = {f.rule for f in rep.findings}
            assert "wildcard-race" in rules, (p, rep.render())
            assert "unmatched-recv" not in rules


class TestNoFalsePositivesOnApps:
    """Zero findings on every bundled application at two valid scales."""

    @pytest.mark.parametrize("name", sorted(APPS))
    def test_app_is_clean(self, name):
        app = get_app(name)
        scales = [n for n in (4, 8, 9, 16) if app.nprocs_valid(n)][:2]
        assert scales, f"no valid scale for {name}"
        for nprocs in scales:
            report = run_lint(app.program, app.psg, nprocs, app.params)
            assert report.findings == (), (name, nprocs, report.render())
            assert not report.incomplete


class TestPrettyRoundTrip:
    """Lint findings must point at pretty-printed-then-reparsed programs
    identically: normalizing a corpus program through the pretty-printer
    is a fixpoint and leaves every finding (rule, severity, span, ranks)
    unchanged."""

    TRIGGERS = {
        "deadlock": (
            "def main() {\n"
            "    if (rank == 0) {\n"
            "        recv(src = 1, tag = 7);\n"
            "    }\n"
            "    barrier();\n"
            "}\n"
        ),
        "tag_mismatch": """
            def main() {
                if (rank == 0) {
                    recv(src = 1, tag = 5);
                }
                if (rank == 1) {
                    send(dest = 0, tag = 6, bytes = 8);
                }
            }
        """,
        "send_send_cycle": """
            def main() {
                send(dest = (rank + 1) % nprocs, tag = 1, bytes = 1048576);
                recv(src = (rank - 1 + nprocs) % nprocs, tag = 1);
            }
        """,
        "sendrecv_distinct_tags": """
            def main() {
                if (rank == 0) {
                    recv(src = 1, tag = 5);
                }
                if (rank == 1) {
                    sendrecv(dest = 0, tag = 5, bytes = 8, src = 0,
                             recv_tag = 9);
                }
            }
        """,
        "wildcard_fan_in": TestNearMisses.WILDCARD_FAN_IN,
    }

    @staticmethod
    def _sig(report):
        return [
            (f.rule, f.severity, f.location.line, f.location.column, f.ranks)
            for f in report.findings
        ]

    @pytest.mark.parametrize(
        "name", sorted(TRIGGERS) + sorted(TestNearMisses.CLEAN)
    )
    def test_findings_stable_under_pretty_roundtrip(self, name):
        from repro.minilang.pretty import pretty_print

        source = self.TRIGGERS.get(name) or TestNearMisses.CLEAN[name]
        normal = pretty_print(parse_program(source, "t.mm"))
        first = parse_program(normal, "t.mm")
        again = parse_program(pretty_print(first), "t.mm")
        assert pretty_print(first) == normal  # normal form is a fixpoint
        assert self._sig(lint(pretty_print(first))) == self._sig(lint(normal))
        assert self._sig(
            run_lint(again, build_psg(again).psg, 4, None)
        ) == self._sig(run_lint(first, build_psg(first).psg, 4, None))


class TestReportSurface:
    def test_json_export_shape(self):
        report = lint(
            """
            def main() {
                if (rank == 0) {
                    recv(src = 1, tag = 5);
                }
            }
            """
        )
        doc = report.to_json_dict()
        json.dumps(doc)  # must be serializable as-is
        assert doc["nprocs"] == 4
        assert doc["counts"]["error"] == 1
        assert doc["symmetry"]["n_classes"] == 2
        (finding,) = doc["findings"]
        assert finding["rule"] == "unmatched-recv"
        assert finding["severity"] == "error"
        assert finding["line"] == 4
        assert finding["ranks"] == [0]

    def test_findings_sort_most_severe_first(self):
        report = lint(
            """
            def main() {
                if (rank == 0) {
                    recv(src = ANY, tag = 9);
                }
                if (rank == 1) {
                    send(dest = 0, tag = 9, bytes = 8);
                    send(dest = 2, tag = 3, bytes = 8);
                }
                if (rank == 2) {
                    recv(src = 1, tag = 3);
                    recv(src = 1, tag = 4);
                }
            }
            """
        )
        orders = [f.severity.order for f in report.findings]
        assert orders == sorted(orders)
        assert report.findings[0].severity is Severity.ERROR

    def test_render_mentions_rule_and_span(self):
        report = lint("def main() {\n    bcast(root = rank % 2, bytes = 8);\n}\n")
        text = report.render()
        assert "t.mm:2" in text
        assert "root-mismatch" in text


class TestPipelineIntegration:
    DEADLOCK = """
def main() {
    if (rank == 0) {
        recv(src = 1, tag = 7);
    }
    barrier();
}
"""

    def test_pipeline_lint(self):
        pipe = Pipeline(self.DEADLOCK, "dl.mm")
        report = pipe.lint(4)
        assert not report.ok
        assert report.errors[0].rule == "unmatched-recv"

    def test_fail_fast_blocks_profiling(self):
        pipe = Pipeline(
            self.DEADLOCK, "dl.mm", AnalysisConfig(lint_fail_fast=True)
        )
        with pytest.raises(LintError) as exc:
            pipe.profile(4)
        assert exc.value.report.errors
        assert "unmatched-recv" in str(exc.value)

    def test_fail_fast_passes_clean_programs(self):
        pipe = Pipeline.for_app(get_app("cg"), lint_fail_fast=True)
        artifact = pipe.profile(8)
        assert artifact.run.nprocs == 8

    def test_fail_fast_is_digest_relevant_but_default_preserving(self):
        base = AnalysisConfig()
        strict = AnalysisConfig(lint_fail_fast=True)
        assert base.digest() != strict.digest()
        # default documents carry no trace of the knob: digests (and
        # serialized configs) from before it existed still round-trip
        assert "lint_fail_fast" not in base.to_dict()
        assert AnalysisConfig.from_json(strict.to_json()) == strict
        with pytest.raises(ValueError):
            AnalysisConfig(lint_fail_fast="yes")


class TestCLI:
    DEADLOCK = (
        "def main() {\n"
        "    if (rank == 0) {\n"
        "        recv(src = 1, tag = 7);\n"
        "    }\n"
        "    barrier();\n"
        "}\n"
    )

    def _write(self, tmp_path, text):
        path = tmp_path / "prog.mm"
        path.write_text(text)
        return str(path)

    def test_lint_exit_one_on_errors(self, tmp_path, capsys):
        from repro.tools.cli import main

        src = self._write(tmp_path, self.DEADLOCK)
        assert main(["lint", "--source", src, "--nprocs", "4"]) == 1
        out = capsys.readouterr().out
        assert "unmatched-recv" in out
        assert "prog.mm:3" in out

    def test_lint_exit_zero_on_clean_app(self, capsys):
        from repro.tools.cli import main

        assert main(["lint", "--app", "cg", "--nprocs", "8"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_json(self, tmp_path, capsys):
        from repro.tools.cli import main

        src = self._write(tmp_path, self.DEADLOCK)
        assert main(["lint", "--source", src, "--nprocs", "4", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["error"] == 1
        assert doc["findings"][0]["rule"] == "unmatched-recv"

    UNMATCHED_SEND = (
        "def main() {\n"
        "    if (rank == 1) {\n"
        "        send(dest = 0, tag = 3, bytes = 8);\n"
        "    }\n"
        "    barrier();\n"
        "}\n"
    )

    def test_fail_on_threshold(self, tmp_path, capsys):
        """--fail-on widens the exit-1 gate from errors to warnings/info."""
        from repro.tools.cli import main

        src = self._write(tmp_path, self.UNMATCHED_SEND)
        # the program has one warning, zero errors
        assert main(["lint", "--source", src, "--nprocs", "4"]) == 0
        assert main(
            ["lint", "--source", src, "--nprocs", "4", "--fail-on", "warning"]
        ) == 1
        assert main(
            ["lint", "--source", src, "--nprocs", "4", "--fail-on", "info"]
        ) == 1
        capsys.readouterr()

    def test_fail_on_info_gates_info_findings(self, tmp_path, capsys):
        from repro.tools.cli import main

        wildcard = (
            "def main() {\n"
            "    if (rank == 0) {\n"
            "        recv(src = ANY, tag = 2);\n"
            "    }\n"
            "    if (rank == 1) {\n"
            "        send(dest = 0, tag = 2, bytes = 8);\n"
            "    }\n"
            "}\n"
        )
        src = self._write(tmp_path, wildcard)
        assert main(
            ["lint", "--source", src, "--nprocs", "4", "--fail-on", "warning"]
        ) == 0
        assert main(
            ["lint", "--source", src, "--nprocs", "4", "--fail-on", "info"]
        ) == 1
        capsys.readouterr()

    def test_lint_scales_clean_app(self, capsys):
        from repro.tools.cli import main

        assert main(["lint", "--app", "lu", "--scales", "all"]) == 0
        out = capsys.readouterr().out
        assert "cross-scale lint" in out
        assert "PROVEN" in out

    def test_lint_scales_square_app_samples(self, capsys):
        from repro.tools.cli import main

        assert main(["lint", "--app", "bt", "--scales", "all"]) == 0
        out = capsys.readouterr().out
        # bt's grid arithmetic is not affine: honest degradation to
        # sampled square witnesses
        assert "SAMPLED" in out

    def test_lint_scales_exit_one_on_range_errors(self, tmp_path, capsys):
        from repro.tools.cli import main

        src = self._write(tmp_path, self.DEADLOCK)
        assert main(["lint", "--source", src, "--scales", "2..16"]) == 1
        out = capsys.readouterr().out
        assert "unmatched-recv" in out

    def test_lint_scales_json(self, tmp_path, capsys):
        from repro.tools.cli import main

        src = self._write(tmp_path, self.DEADLOCK)
        assert main(
            ["lint", "--source", src, "--scales", "4,8", "--json"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["scales"] == [4, 8]
        assert doc["counts"]["error"] >= 1
        assert doc["reports"]["4"]["findings"][0]["rule"] == "unmatched-recv"
