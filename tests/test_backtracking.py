"""Backtracking root-cause algorithm tests (Algorithm 1)."""

import pytest

from repro.detection import (
    backtrack_from,
    backtrack_root_causes,
    detect_abnormal,
    detect_non_scalable,
    detect_scaling_loss,
)
from repro.detection.backtracking import BacktrackConfig
from repro.ppg import build_ppg
from repro.psg.graph import VertexType
from tests.conftest import profile_source

# Zeus-MP-shaped program: busy ranks run an extra loop; idle ranks wait in
# waitall; allreduce synchronizes.  The loop is the ground-truth root cause.
ZEUS_SHAPE = """def main() {
    for (var it = 0; it < 20; it = it + 1) {
        compute(flops = 40000000 / nprocs, name = "stencil");
        bval();
        isend(dest = (rank + 1) % nprocs, tag = 7, bytes = 4096, req = s);
        irecv(src = (rank - 1 + nprocs) % nprocs, tag = 7, req = r);
        waitall();
        allreduce(bytes = 8);
    }
}
def bval() {
    if (rank % 4 == 0) {
        for (var j = 0; j < 4; j = j + 1) {
            compute(flops = 2000000, name = "boundary");
        }
    }
}"""


@pytest.fixture(scope="module")
def zeus_setup():
    runs = []
    psg = None
    for p in (4, 8, 16):
        run, psg, _ = profile_source(ZEUS_SHAPE, p, filename="zeus_shape.mm")
        runs.append(run)
    ppgs = [build_ppg(psg, r.nprocs, r.profile, r.comm) for r in runs]
    return runs, ppgs, psg


class TestBacktrackWalk:
    def test_walk_from_waitall_reaches_boundary_loop(self, zeus_setup):
        _runs, ppgs, psg = zeus_setup
        ppg = ppgs[-1]
        waitall = [v for v in psg.mpi_vertices() if v.name == "MPI_Waitall"][0]
        # rank 1 waits for busy rank 0
        path = backtrack_from(ppg, (1, waitall.vid))
        labels = [psg.vertices[vid].label for _r, vid in path.nodes]
        assert any("boundary" in lab or "Loop" in lab for lab in labels)
        # the walk crossed to the sender's rank
        assert len(set(path.ranks())) > 1

    def test_walk_from_allreduce_jumps_to_laggard(self, zeus_setup):
        _runs, ppgs, psg = zeus_setup
        ppg = ppgs[-1]
        allr = [v for v in psg.mpi_vertices() if v.name == "MPI_Allreduce"][0]
        times = ppg.vertex_times(allr.vid)
        start_rank = max(range(ppg.nprocs), key=lambda r: times[r])
        path = backtrack_from(ppg, (start_rank, allr.vid))
        assert len(path.nodes) > 2
        cause = path.cause_node(ppg)
        assert psg.vertices[cause[1]].vtype in (VertexType.COMP, VertexType.LOOP)

    def test_walk_terminates(self, zeus_setup):
        _runs, ppgs, psg = zeus_setup
        ppg = ppgs[-1]
        for v in psg.vertices.values():
            path = backtrack_from(ppg, (0, v.vid))
            assert path.terminated in ("root", "collective", "cycle", "exhausted")
            assert len(path.nodes) < 1000

    def test_max_steps_respected(self, zeus_setup):
        _runs, ppgs, psg = zeus_setup
        ppg = ppgs[-1]
        waitall = [v for v in psg.mpi_vertices() if v.name == "MPI_Waitall"][0]
        path = backtrack_from(
            ppg, (1, waitall.vid), BacktrackConfig(max_steps=2)
        )
        assert len(path.nodes) <= 3

    def test_loop_descend_only_once(self, zeus_setup):
        """A Loop vertex is entered via control dep only when unscanned."""
        _runs, ppgs, psg = zeus_setup
        ppg = ppgs[-1]
        loop = [v for v in psg.vertices.values() if v.vtype is VertexType.LOOP][0]
        path = backtrack_from(ppg, (0, loop.vid))
        # no node appears twice
        assert len(path.nodes) == len(set(path.nodes))


#: Amdahl-style program: the parallel part shrinks with nprocs, the serial
#: section is identical on every rank — *perfectly balanced*, so no vertex
#: can make other ranks wait and cause_node's imbalance score is 0 for all.
AMDAHL_SHAPE = """def main() {
    for (var it = 0; it < 10; it = it + 1) {
        compute(flops = 30000000 / nprocs, name = "parallel_part");
        barrier();
        compute(flops = 60000000, name = "serial_section");
        allreduce(bytes = 8);
    }
}"""


class TestCauseNodeTieBreaking:
    """cause_node scoring when every computation vertex is perfectly
    balanced (the Amdahl fallback path)."""

    @pytest.fixture(scope="class")
    def amdahl_setup(self):
        runs = []
        psg = None
        for p in (4, 8, 16):
            run, psg, _ = profile_source(AMDAHL_SHAPE, p, filename="amdahl.mm")
            runs.append(run)
        ppgs = [build_ppg(psg, r.nprocs, r.profile, r.comm) for r in runs]
        return runs, ppgs, psg

    def _comp_vid(self, psg, name):
        (v,) = [v for v in psg.vertices.values() if name in v.label]
        return v.vid

    def test_all_computations_balanced(self, amdahl_setup):
        _runs, ppgs, psg = amdahl_setup
        ppg = ppgs[-1]
        for name in ("parallel_part", "serial_section"):
            times = ppg.vertex_times(self._comp_vid(psg, name))
            assert max(times) == pytest.approx(min(times), rel=1e-9)

    def test_fallback_blames_largest_balanced_computation(self, amdahl_setup):
        """With zero imbalance everywhere, the walk falls back to the
        largest mean-time computation on the path — the serial section
        (60e6 flops vs 30e6/16 for the parallel part at 16 ranks)."""
        from repro.detection.backtracking import RootCausePath

        _runs, ppgs, psg = amdahl_setup
        ppg = ppgs[-1]
        par = self._comp_vid(psg, "parallel_part")
        ser = self._comp_vid(psg, "serial_section")
        path = RootCausePath(
            start=(0, ser), nodes=[(0, ser), (0, par)], terminated="root"
        )
        assert path.cause_node(ppg) == (0, ser)
        # order independence: the larger mean wins from either direction
        path_rev = RootCausePath(
            start=(0, par), nodes=[(0, par), (0, ser)], terminated="root"
        )
        assert path_rev.cause_node(ppg) == (0, ser)

    def test_exact_tie_goes_to_deeper_node(self, amdahl_setup):
        """Equal means (same vertex seen on two ranks): the node reached
        *later* in the backward walk wins the tie."""
        from repro.detection.backtracking import RootCausePath

        _runs, ppgs, psg = amdahl_setup
        ppg = ppgs[-1]
        ser = self._comp_vid(psg, "serial_section")
        path = RootCausePath(
            start=(0, ser), nodes=[(0, ser), (3, ser)], terminated="root"
        )
        assert path.cause_node(ppg) == (3, ser)

    def test_path_without_computation_returns_last_node(self, amdahl_setup):
        from repro.detection.backtracking import RootCausePath

        _runs, ppgs, psg = amdahl_setup
        ppg = ppgs[-1]
        allr = [v for v in psg.mpi_vertices() if v.name == "MPI_Allreduce"][0]
        path = RootCausePath(
            start=(0, allr.vid),
            nodes=[(0, allr.vid), (1, allr.vid)],
            terminated="collective",
        )
        assert path.cause_node(ppg) == (1, allr.vid)
        empty = RootCausePath(start=(2, allr.vid), nodes=[], terminated="root")
        assert empty.cause_node(ppg) == (2, allr.vid)

    def test_full_detection_blames_serial_section(self, amdahl_setup):
        """End-to-end: the non-scalable serial section is found and the
        Amdahl fallback names it (not the shrinking parallel part)."""
        runs, _ppgs, psg = amdahl_setup
        report = detect_scaling_loss(runs, psg=psg)
        assert report.root_causes
        assert any("serial_section" in rc.label for rc in report.root_causes)
        top_balanced = [
            rc for rc in report.root_causes if "serial_section" in rc.label
        ]
        assert all(rc.imbalance == pytest.approx(1.0) for rc in top_balanced)


class TestMainAlgorithm:
    def test_paths_from_nonscalable_then_abnormal(self, zeus_setup):
        _runs, ppgs, psg = zeus_setup
        ppg = ppgs[-1]
        ns = detect_non_scalable(ppgs)
        ab = detect_abnormal(ppg)
        paths = backtrack_root_causes(ppg, ns, ab)
        assert len(paths) >= len(ns)
        # covered abnormal vertices don't get duplicate walks
        starts = [p.start for p in paths]
        assert len(starts) == len(set(starts))

    def test_report_names_boundary_as_top_cause(self, zeus_setup):
        runs, _ppgs, psg = zeus_setup
        report = detect_scaling_loss(runs, psg=psg)
        assert report.root_causes
        top = report.root_causes[0]
        assert "boundary" in top.label or "Loop" in top.label
        # located in the bval() function body (lines 11-15 of the source)
        line = int(top.location.rsplit(":", 1)[1])
        assert 11 <= line <= 15

    def test_report_paths_cross_processes(self, zeus_setup):
        runs, _ppgs, psg = zeus_setup
        report = detect_scaling_loss(runs, psg=psg)
        assert any(len(rc.path_ranks) > 1 for rc in report.root_causes)

    def test_report_render_readable(self, zeus_setup):
        runs, _ppgs, psg = zeus_setup
        report = detect_scaling_loss(runs, psg=psg)
        text = report.render()
        assert "Root causes" in text
        assert "zeus_shape.mm" in text
        assert "ranks" in text

    def test_detection_time_recorded(self, zeus_setup):
        runs, _ppgs, psg = zeus_setup
        report = detect_scaling_loss(runs, psg=psg)
        assert report.detection_seconds > 0

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            detect_scaling_loss([], psg=None)

    def test_psg_required(self, zeus_setup):
        runs, _ppgs, _psg = zeus_setup
        with pytest.raises(ValueError, match="PSG"):
            detect_scaling_loss(runs)
