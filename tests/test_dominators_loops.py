"""Dominator analysis and natural-loop detection tests."""


from repro.ir.cfg import build_cfg
from repro.ir.dominators import (
    compute_dominators,
    dominates,
    dominator_tree,
    reverse_postorder,
)
from repro.ir.loops import find_natural_loops, loop_nesting_depths
from repro.minilang.parser import parse_program


def cfg_of(body: str):
    prog = parse_program(f"def main() {{ {body} }}")
    return build_cfg(prog.entry)


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of("if (rank == 0) { compute(flops = 1); } barrier();")
        idom = compute_dominators(cfg)
        entry = cfg.entry.block_id
        for bid in idom:
            assert dominates(idom, entry, bid)

    def test_entry_idom_is_itself(self):
        cfg = cfg_of("")
        idom = compute_dominators(cfg)
        assert idom[cfg.entry.block_id] == cfg.entry.block_id

    def test_if_join_dominated_by_condition_block(self):
        cfg = cfg_of(
            "if (rank == 0) { compute(flops = 1); } else { compute(flops = 2); }"
        )
        idom = compute_dominators(cfg)
        join = [b for b in cfg.blocks.values() if b.role == "join"][0]
        assert idom[join.block_id] == cfg.entry.block_id

    def test_branch_arms_do_not_dominate_each_other(self):
        cfg = cfg_of(
            "if (rank == 0) { compute(flops = 1); } else { compute(flops = 2); }"
        )
        idom = compute_dominators(cfg)
        then = [b for b in cfg.blocks.values() if b.role == "then"][0]
        els = [b for b in cfg.blocks.values() if b.role == "else"][0]
        assert not dominates(idom, then.block_id, els.block_id)
        assert not dominates(idom, els.block_id, then.block_id)

    def test_rpo_starts_at_entry(self):
        cfg = cfg_of("compute(flops = 1);")
        order = reverse_postorder(cfg)
        assert order[0] == cfg.entry.block_id

    def test_rpo_covers_only_reachable(self):
        cfg = cfg_of("return; compute(flops = 1);")
        order = reverse_postorder(cfg)
        assert set(order) == cfg.reachable_blocks()

    def test_dominator_tree_children(self):
        cfg = cfg_of("if (rank == 0) { compute(flops = 1); }")
        tree = dominator_tree(cfg)
        entry = cfg.entry.block_id
        assert len(tree[entry]) >= 1

    def test_dominates_is_reflexive(self):
        cfg = cfg_of("barrier();")
        idom = compute_dominators(cfg)
        for bid in idom:
            assert dominates(idom, bid, bid)


class TestNaturalLoops:
    def test_single_loop_detected(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { compute(flops = 1); }")
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].depth == 1
        assert loops[0].statement is not None

    def test_loop_body_blocks_in_loop(self):
        cfg = cfg_of("while (rank < 1) { compute(flops = 1); }")
        (loop,) = find_natural_loops(cfg)
        body = [b for b in cfg.blocks.values() if b.role == "loop_body"][0]
        assert body.block_id in loop
        assert loop.header in loop.blocks

    def test_loop_exit_not_in_loop(self):
        cfg = cfg_of("while (rank < 1) { } barrier();")
        (loop,) = find_natural_loops(cfg)
        exits = [b for b in cfg.blocks.values() if b.role == "loop_exit"]
        assert all(e.block_id not in loop for e in exits)

    def test_nested_depths(self):
        cfg = cfg_of(
            "for (var i = 0; i < 2; i = i + 1) {"
            "  for (var j = 0; j < 2; j = j + 1) {"
            "    for (var k = 0; k < 2; k = k + 1) { compute(flops = 1); }"
            "  }"
            "}"
        )
        depths = sorted(loop_nesting_depths(cfg).values())
        assert depths == [1, 2, 3]

    def test_sequential_loops_same_depth(self):
        cfg = cfg_of(
            "for (var i = 0; i < 2; i = i + 1) { }"
            "for (var j = 0; j < 2; j = j + 1) { }"
        )
        # empty bodies still form back edges via the header
        loops = find_natural_loops(cfg)
        assert len(loops) == 2
        assert all(lp.depth == 1 for lp in loops)
        assert all(lp.parent_header is None for lp in loops)

    def test_no_loops_in_branchy_code(self):
        cfg = cfg_of(
            "if (rank == 0) { compute(flops = 1); } else { barrier(); }"
        )
        assert find_natural_loops(cfg) == []

    def test_inner_loop_parent(self):
        cfg = cfg_of(
            "for (var i = 0; i < 2; i = i + 1) {"
            "  for (var j = 0; j < 2; j = j + 1) { compute(flops = 1); }"
            "}"
        )
        loops = find_natural_loops(cfg)
        inner = [lp for lp in loops if lp.depth == 2][0]
        outer = [lp for lp in loops if lp.depth == 1][0]
        assert inner.parent_header == outer.header
        assert inner.blocks < outer.blocks
