"""Lexer tests."""

import pytest

from repro.minilang.errors import LexError
from repro.minilang.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestBasics:
    def test_empty_source_gives_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_integers(self):
        toks = tokenize("42 0 1_000")
        assert [t.int_value for t in toks[:-1]] == [42, 0, 1000]

    def test_floats(self):
        toks = tokenize("3.5 1e6 2.5e-3 1E+2")
        assert all(t.kind is TokenKind.FLOAT for t in toks[:-1])
        assert toks[0].float_value == 3.5
        assert toks[1].float_value == 1e6
        assert toks[2].float_value == 2.5e-3

    def test_int_dot_not_float_without_digit(self):
        # "1." followed by identifier must not absorb the dot
        with pytest.raises(LexError):
            tokenize("1.x")

    def test_identifiers_and_keywords(self):
        toks = tokenize("def main var x for ANY true false")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT
        assert toks[2].kind is TokenKind.KEYWORD
        assert toks[7].text == "false"

    def test_strings(self):
        toks = tokenize('"hello" \'world\'')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == "hello"
        assert toks[1].text == "world"

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\t\"q\""')
        assert toks[0].text == 'a\nb\t"q"'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("== != <= >= && ||")[:-1] == [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]

    def test_single_char_operators(self):
        assert kinds("+ - * / % < > = ! &")[:-1] == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.ASSIGN,
            TokenKind.NOT,
            TokenKind.AMP,
        ]

    def test_punctuation(self):
        assert kinds("(){},;")[:-1] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.COMMA,
            TokenKind.SEMI,
        ]

    def test_single_pipe_rejected(self):
        with pytest.raises(LexError):
            tokenize("a | b")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestComments:
    def test_line_comment_slashes(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_line_comment_hash(self):
        assert texts("a # comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")


class TestLocations:
    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].location.line == 1
        assert toks[1].location.line == 2
        assert toks[2].location.line == 3
        assert toks[2].location.column == 3

    def test_filename_recorded(self):
        toks = tokenize("x", filename="foo.mm")
        assert toks[0].location.filename == "foo.mm"
        assert str(toks[0].location) == "foo.mm:1"
