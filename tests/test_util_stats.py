"""Tests for the statistics helpers, especially the log-log scaling fit."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    geometric_mean,
    loglog_fit,
    median_absolute_deviation,
    relative_imbalance,
    trimmed_mean,
)


class TestLogLogFit:
    def test_perfect_strong_scaling(self):
        scales = [2, 4, 8, 16]
        times = [1.0 / p for p in scales]
        fit = loglog_fit(scales, times)
        assert fit.alpha == pytest.approx(-1.0, abs=1e-9)
        assert fit.c == pytest.approx(1.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_constant_serial_work(self):
        fit = loglog_fit([2, 4, 8], [3.0, 3.0, 3.0])
        assert fit.alpha == pytest.approx(0.0, abs=1e-12)
        assert fit.c == pytest.approx(3.0)

    def test_contention_growth(self):
        scales = [2, 4, 8, 16]
        fit = loglog_fit(scales, [0.1 * p**0.5 for p in scales])
        assert fit.alpha == pytest.approx(0.5, abs=1e-9)

    def test_predict(self):
        fit = loglog_fit([2, 4, 8], [4.0, 2.0, 1.0])
        assert fit.predict(16) == pytest.approx(0.5, rel=1e-6)

    def test_zero_values_clamped_not_crash(self):
        fit = loglog_fit([2, 4], [1.0, 0.0])
        assert fit.alpha < 0  # treated as strongly decaying

    def test_noisy_fit_r2_below_one(self):
        rng = np.random.default_rng(0)
        scales = [2, 4, 8, 16, 32]
        times = [1.0 / p * math.exp(rng.normal(0, 0.2)) for p in scales]
        fit = loglog_fit(scales, times)
        assert fit.r2 < 1.0
        assert -1.5 < fit.alpha < -0.5

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_fit([4], [1.0])

    def test_rejects_nonpositive_scales(self):
        with pytest.raises(ValueError):
            loglog_fit([0, 2], [1.0, 1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            loglog_fit([1, 2], [1.0])

    @given(
        alpha=st.floats(min_value=-2.0, max_value=2.0),
        c=st.floats(min_value=1e-6, max_value=1e3),
    )
    def test_recovers_exact_power_law(self, alpha, c):
        scales = [2, 4, 8, 16]
        times = [c * p**alpha for p in scales]
        fit = loglog_fit(scales, times)
        assert fit.alpha == pytest.approx(alpha, abs=1e-6)
        assert fit.c == pytest.approx(c, rel=1e-6)


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_trimmed_mean_removes_outlier(self):
        values = [1.0] * 18 + [100.0, -100.0]
        assert trimmed_mean(values, trim=0.1) == pytest.approx(1.0)

    def test_trimmed_mean_small_input_untouched(self):
        assert trimmed_mean([5.0], trim=0.4) == 5.0

    def test_trimmed_mean_empty_raises(self):
        with pytest.raises(ValueError):
            trimmed_mean([])

    def test_mad_constant_is_zero(self):
        assert median_absolute_deviation([2, 2, 2]) == 0.0

    def test_mad_known_value(self):
        assert median_absolute_deviation([1, 2, 3, 4, 5]) == pytest.approx(1.0)

    def test_mad_empty_raises(self):
        with pytest.raises(ValueError):
            median_absolute_deviation([])


class TestRelativeImbalance:
    def test_balanced(self):
        assert relative_imbalance([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_one_slow_rank(self):
        # 3 ranks at 1.0, one at 2.0: max/mean = 2.0/1.25
        assert relative_imbalance([1, 1, 1, 2]) == pytest.approx(1.6)

    def test_zero_mean_defined(self):
        assert relative_imbalance([0.0, 0.0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            relative_imbalance([])

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
    def test_always_at_least_one(self, values):
        assert relative_imbalance(values) >= 1.0 - 1e-9
