"""PSG construction tests: intra-procedural, inter-procedural, call graph."""

import pytest

from repro.minilang.parser import parse_program
from repro.psg import (
    build_call_graph,
    build_complete_psg,
    build_local_psg,
    build_psg,
    refine_indirect_calls,
)
from repro.psg.graph import VertexType


def local_psg(body: str, name: str = "f"):
    prog = parse_program(f"def {name}() {{ {body} }}")
    return build_local_psg(prog.function(name))


class TestIntraproc:
    def test_root_vertex(self):
        psg = local_psg("compute(flops = 1);")
        assert psg.root.vtype is VertexType.ROOT
        assert psg.root.name == "f"

    def test_compute_vertex(self):
        psg = local_psg('compute(flops = 1, name = "work");')
        comps = [v for v in psg.vertices.values() if v.vtype is VertexType.COMP]
        assert len(comps) == 1
        assert comps[0].name == "work"

    def test_mpi_vertex_labeled(self):
        psg = local_psg("allreduce(bytes = 8);")
        mpis = psg.mpi_vertices()
        assert len(mpis) == 1
        assert mpis[0].label == "MPI_Allreduce"

    def test_scalar_statements_no_vertices(self):
        psg = local_psg("var x = 1; x = 2; return;")
        assert len(psg) == 1  # just the root

    def test_loop_nesting_depth_recorded(self):
        psg = local_psg(
            "for (var i = 0; i < 2; i = i + 1) {"
            "  for (var j = 0; j < 2; j = j + 1) { compute(flops = 1); }"
            "}"
        )
        loops = sorted(
            (v for v in psg.vertices.values() if v.vtype is VertexType.LOOP),
            key=lambda v: v.loop_depth,
        )
        assert [lp.loop_depth for lp in loops] == [1, 2]

    def test_branch_arms_tagged(self):
        psg = local_psg(
            "if (rank == 0) { compute(flops = 1); } else { barrier(); }"
        )
        branch = [v for v in psg.vertices.values() if v.vtype is VertexType.BRANCH][0]
        arms = {psg.vertices[c].arm for c in branch.children}
        assert arms == {"then", "else"}

    def test_empty_branch_pruned(self):
        psg = local_psg("if (rank == 0) { var x = 1; }")
        assert all(v.vtype is not VertexType.BRANCH for v in psg.vertices.values())

    def test_empty_loop_pruned(self):
        psg = local_psg("for (var i = 0; i < 9; i = i + 1) { i = i + 0; }")
        assert all(v.vtype is not VertexType.LOOP for v in psg.vertices.values())

    def test_execution_order_of_children(self):
        psg = local_psg(
            'compute(flops = 1, name = "a"); barrier(); compute(flops = 1, name = "b");'
        )
        labels = [psg.vertices[c].name for c in psg.root.children]
        assert labels[0] == "a" and labels[2] == "b"

    def test_prev_in_order(self):
        psg = local_psg('compute(flops = 1, name = "a"); barrier();')
        a, b = psg.root.children
        assert psg.prev_in_order(b) == a
        assert psg.prev_in_order(a) == psg.root.vid
        assert psg.prev_in_order(psg.root.vid) is None


class TestCallGraph:
    def test_direct_edges(self):
        prog = parse_program(
            "def main() { a(); b(); } def a() { b(); } def b() { barrier(); }"
        )
        cg = build_call_graph(prog)
        assert cg.callees("main") == {"a", "b"}
        assert cg.callees("a") == {"b"}

    def test_recursion_detected(self):
        prog = parse_program(
            "def main() { r(3); } def r(n) { if (n > 0) { r(n - 1); } }"
        )
        cg = build_call_graph(prog)
        assert cg.recursive_functions() == {"r"}

    def test_mutual_recursion_detected(self):
        prog = parse_program(
            "def main() { a(); } def a() { b(); } def b() { a(); }"
        )
        cg = build_call_graph(prog)
        assert cg.recursive_functions() == {"a", "b"}

    def test_address_taken(self):
        prog = parse_program(
            "def main() { var f = &h; f(); } def h() { barrier(); }"
        )
        cg = build_call_graph(prog)
        assert cg.address_taken == {"h"}
        indirect = [cs for cs in cg.call_sites if cs.indirect]
        assert len(indirect) == 1

    def test_unreachable_functions(self):
        prog = parse_program(
            "def main() { } def dead() { barrier(); }"
        )
        cg = build_call_graph(prog)
        assert cg.unreachable_functions() == {"dead"}


class TestInterproc:
    def test_call_spliced_in_place(self, fig3_program):
        psg = build_complete_psg(fig3_program)
        # foo's branch appears under main's loop, in place of the call
        branches = [
            v for v in psg.vertices.values() if v.vtype is VertexType.BRANCH
        ]
        assert len(branches) == 1
        assert branches[0].function == "foo"
        # and no Call vertices remain
        assert all(v.vtype is not VertexType.CALL for v in psg.vertices.values())

    def test_inline_path_distinguishes_call_sites(self):
        prog = parse_program(
            "def main() { h(); h(); } def h() { compute(flops = 1); }"
        )
        psg = build_complete_psg(prog)
        comps = [v for v in psg.vertices.values() if v.vtype is VertexType.COMP]
        assert len(comps) == 2
        assert comps[0].inline_path != comps[1].inline_path

    def test_recursion_keeps_call_vertex_with_cycle(self):
        prog = parse_program(
            "def main() { r(); } def r() { compute(flops = 1); r(); }"
        )
        psg = build_complete_psg(prog)
        calls = [v for v in psg.vertices.values() if v.vtype is VertexType.CALL]
        assert len(calls) == 1
        assert calls[0].recursion_target is not None
        assert calls[0].recursion_target in psg.vertices

    def test_indirect_call_kept_marked(self):
        prog = parse_program(
            "def main() { var f = &h; f(); } def h() { barrier(); }"
        )
        psg = build_complete_psg(prog)
        calls = [v for v in psg.vertices.values() if v.vtype is VertexType.CALL]
        assert len(calls) == 1
        assert calls[0].indirect

    def test_refine_indirect_calls(self):
        prog = parse_program(
            "def main() { var f = &h; f(); } def h() { barrier(); }"
        )
        psg = build_complete_psg(prog)
        call = [v for v in psg.vertices.values() if v.vtype is VertexType.CALL][0]
        refined = refine_indirect_calls(
            psg, prog, {(call.inline_path, call.stmt_ids[0]): {"h"}}
        )
        assert refined == 1
        assert not psg.vertices[call.vid].indirect
        # h's barrier is now under the call vertex
        sub = psg.subtree_ids(call.vid)
        assert any(
            psg.vertices[vid].vtype is VertexType.MPI for vid in sub if vid != call.vid
        )

    def test_stmt_index_lookup_with_fallback(self):
        prog = parse_program(
            "def main() { r(); } def r() { compute(flops = 1); r(); }"
        )
        psg = build_complete_psg(prog)
        comp = [v for v in psg.vertices.values() if v.vtype is VertexType.COMP][0]
        sid = comp.stmt_ids[0]
        # deeper recursive paths fall back to the first instance
        deep_path = comp.inline_path + comp.inline_path[-1:] * 3 if comp.inline_path else ()
        found = psg.lookup_stmt(comp.inline_path, sid)
        assert found == comp.vid
        assert psg.lookup_stmt(deep_path, sid) == comp.vid

    def test_missing_entry_raises(self):
        prog = parse_program("def helper() { }")
        with pytest.raises(KeyError):
            build_complete_psg(prog)

    def test_calling_path(self, fig3_static):
        psg = fig3_static.psg
        send = [v for v in psg.mpi_vertices() if v.name == "MPI_Send"][0]
        path = psg.calling_path(send.vid)
        assert path[0].vtype is VertexType.ROOT
        assert path[-1].vid == send.vid
        assert len(path) >= 3  # root -> loop -> branch -> send


class TestCfgVerification:
    def test_verification_runs_on_all_apps(self):
        from repro.apps import APPS

        for spec in APPS.values():
            # build_psg(verify_cfg=True) is the default; would raise on drift
            assert len(spec.psg) > 0

    def test_find_by_location(self, fig3_static):
        psg = fig3_static.psg
        hits = psg.find_by_location("fig3.mm", 1)
        assert all(v.location.line == 1 for v in hits)
