"""Tests for the modeling-based baseline (regression scaling prediction)."""

import pytest

from repro.baselines import fit_scaling_model
from repro.ppg import build_ppg
from tests.conftest import profile_source

AMDAHL = """def main() {
    for (var it = 0; it < 10; it = it + 1) {
        compute(flops = 6400000000 / nprocs, name = "parallel_part");
        barrier();
        compute(flops = 200000000, name = "serial_part");
        allreduce(bytes = 8);
    }
}"""


@pytest.fixture(scope="module")
def model_setup():
    ppgs = []
    psg = None
    for p in (2, 4, 8, 16):
        run, psg, _ = profile_source(AMDAHL, p)
        ppgs.append(build_ppg(psg, p, run.profile, run.comm))
    # hold out the largest scale for prediction checks
    model = fit_scaling_model(ppgs[:-1])
    return model, ppgs, psg


class TestFitting:
    def test_needs_two_scales(self, model_setup):
        _model, ppgs, _ = model_setup
        with pytest.raises(ValueError):
            fit_scaling_model(ppgs[:1])

    def test_duplicate_scales_rejected(self, model_setup):
        _model, ppgs, _ = model_setup
        with pytest.raises(ValueError):
            fit_scaling_model([ppgs[0], ppgs[0]])

    def test_vertex_models_have_sane_slopes(self, model_setup):
        model, _ppgs, psg = model_setup
        by_name = {
            psg.vertices[vid].name: m for vid, m in model.vertices.items()
        }
        assert by_name["parallel_part"].fit.alpha == pytest.approx(-1.0, abs=0.1)
        assert by_name["serial_part"].fit.alpha == pytest.approx(0.0, abs=0.1)

    def test_extrapolation_close_to_held_out_scale(self, model_setup):
        model, ppgs, _ = model_setup
        held_out = ppgs[-1]  # P=16, not used in training
        predicted = model.predict_total(16)
        actual = max(
            sum(held_out.vertex_times(vid)[r] for vid in held_out.psg.vertices)
            for r in range(held_out.nprocs)
        )
        assert predicted == pytest.approx(actual, rel=0.15)

    def test_predicted_shares_sum_to_one(self, model_setup):
        model, _ppgs, _ = model_setup
        shares = model.predicted_shares(64)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_serial_share_grows_with_scale(self, model_setup):
        model, _ppgs, psg = model_setup
        serial_vid = next(
            vid for vid, m in model.vertices.items()
            if psg.vertices[vid].name == "serial_part"
        )
        s8 = model.predicted_shares(8)[serial_vid]
        s256 = model.predicted_shares(256)[serial_vid]
        assert s256 > s8

    def test_scalability_bug_flagged_at_scale(self, model_setup):
        model, _ppgs, psg = model_setup
        bugs = model.scalability_bugs(1024, share_threshold=0.2)
        names = {psg.vertices[m.vid].name for m in bugs}
        assert "serial_part" in names
        assert "parallel_part" not in names

    def test_speedup_curve_monotone_then_flattening(self, model_setup):
        model, _ppgs, _ = model_setup
        curve = model.speedup_curve([2, 8, 32, 128, 512])
        values = [curve[p] for p in (2, 8, 32, 128, 512)]
        assert values == sorted(values)
        # Amdahl: speedup gain per doubling shrinks
        assert values[-1] / values[-2] < values[1] / values[0]

    def test_no_root_cause_capability(self, model_setup):
        """The documented limitation: no inter-process dependence, hence no
        backtracking equivalent exists on the model object."""
        model, _ppgs, _ = model_setup
        assert not hasattr(model, "backtrack")
        assert not hasattr(model, "comm_pred")
