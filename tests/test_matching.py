"""Message-matching tests, including MPI ordering properties (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.matching import Mailbox, Message, PostedRecv
from repro.simulator.ops import ANY


def msg(src=0, dest=0, tag=1, seq_time=0.0, nbytes=8):
    return Message(
        src=src, dest=dest, tag=tag, nbytes=nbytes,
        send_time=seq_time, arrival=seq_time + 1e-6, send_vid=0,
    )


def recv(rank=0, src=0, tag=1, t=0.0, request=None):
    return PostedRecv(
        rank=rank, src=src, tag=tag, post_time=t, recv_vid=1, request=request
    )


class TestBasicMatching:
    def test_recv_matches_pending_message(self):
        box = Mailbox(0)
        assert box.deliver(msg()) is None
        match = box.post_recv(recv())
        assert match is not None
        assert match.message.tag == 1

    def test_message_matches_posted_recv(self):
        box = Mailbox(0)
        assert box.post_recv(recv()) is None
        match = box.deliver(msg())
        assert match is not None

    def test_tag_mismatch_no_match(self):
        box = Mailbox(0)
        box.deliver(msg(tag=5))
        assert box.post_recv(recv(tag=6)) is None
        assert box.outstanding() == (1, 1)

    def test_src_mismatch_no_match(self):
        box = Mailbox(0)
        box.deliver(msg(src=2))
        assert box.post_recv(recv(src=3)) is None

    def test_any_source_matches(self):
        box = Mailbox(0)
        box.deliver(msg(src=7))
        match = box.post_recv(recv(src=ANY))
        assert match is not None
        assert match.message.src == 7

    def test_any_tag_matches(self):
        box = Mailbox(0)
        box.deliver(msg(tag=42))
        assert box.post_recv(recv(src=0, tag=ANY)) is not None

    def test_wrong_mailbox_rejected(self):
        box = Mailbox(0)
        with pytest.raises(ValueError):
            box.deliver(msg(dest=3))
        with pytest.raises(ValueError):
            box.post_recv(recv(rank=3))

    def test_ready_time_is_max_of_post_and_arrival(self):
        box = Mailbox(0)
        box.deliver(msg(seq_time=5.0))
        match = box.post_recv(recv(t=1.0))
        assert match.ready_time == pytest.approx(5.0 + 1e-6)
        box2 = Mailbox(0)
        box2.deliver(msg(seq_time=0.0))
        match2 = box2.post_recv(recv(t=9.0))
        assert match2.ready_time == 9.0


class TestOrdering:
    def test_fifo_same_channel(self):
        """Non-overtaking: messages from the same (src, tag) match in order."""
        box = Mailbox(0)
        m1 = msg(seq_time=1.0)
        m2 = msg(seq_time=2.0)
        box.deliver(m1)
        box.deliver(m2)
        first = box.post_recv(recv())
        second = box.post_recv(recv())
        assert first.message is m1
        assert second.message is m2

    def test_earliest_posted_recv_wins(self):
        box = Mailbox(0)
        r1 = recv(t=1.0)
        r2 = recv(t=2.0)
        box.post_recv(r1)
        box.post_recv(r2)
        match = box.deliver(msg())
        assert match.recv is r1

    def test_any_recv_takes_earliest_pending(self):
        box = Mailbox(0)
        m_late = msg(src=1, tag=9, seq_time=3.0)
        m_early = msg(src=2, tag=9, seq_time=1.0)
        box.deliver(m_early)
        box.deliver(m_late)
        match = box.post_recv(recv(src=ANY, tag=9))
        assert match.message is m_early

    def test_specific_recv_skips_ineligible(self):
        box = Mailbox(0)
        box.deliver(msg(src=1, tag=1))
        box.deliver(msg(src=2, tag=2))
        match = box.post_recv(recv(src=2, tag=2))
        assert match.message.src == 2
        assert box.outstanding() == (1, 0)


@st.composite
def channel_traffic(draw):
    """A random interleaving of sends and eligible receives on one channel."""
    n = draw(st.integers(min_value=1, max_value=20))
    ops = ["send"] * n + ["recv"] * n
    return draw(st.permutations(ops))


class _ReferenceMailbox:
    """The pre-bucketing implementation: flat lists + linear scans.

    Kept verbatim as the behavioural oracle for the hash-bucketed
    mailbox: any divergence on any op sequence is a bucketing bug.
    """

    def __init__(self, rank):
        self.rank = rank
        self.pending = []
        self.posted = []

    def deliver(self, msg):
        for i, r in enumerate(self.posted):
            if r.accepts(msg):
                self.posted.pop(i)
                return (msg, r)
        self.pending.append(msg)
        return None

    def post_recv(self, recv):
        for i, m in enumerate(self.pending):
            if recv.accepts(m):
                self.pending.pop(i)
                return (m, recv)
        self.posted.append(recv)
        return None


@st.composite
def mailbox_ops(draw):
    """A random interleaving of sends and receives with wildcards."""
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("send", draw(st.integers(0, 3)), draw(st.integers(0, 3))))
        else:
            src = draw(st.one_of(st.none(), st.integers(0, 3)))
            tag = draw(st.one_of(st.none(), st.integers(0, 3)))
            ops.append(("recv", src, tag))
    return ops


class TestBucketEquivalence:
    """Hash-bucketed mailbox == reference linear scan, op for op."""

    @settings(max_examples=200, deadline=None)
    @given(mailbox_ops())
    def test_wildcard_vs_bucket_equivalence(self, ops):
        bucketed = Mailbox(0)
        reference = _ReferenceMailbox(0)
        t = 0.0
        for kind, a, b in ops:
            t += 1.0
            if kind == "send":
                m1 = msg(src=a, tag=b, seq_time=t)
                m2 = msg(src=a, tag=b, seq_time=t)
                got = bucketed.deliver(m1)
                want = reference.deliver(m2)
            else:
                src = ANY if a is None else a
                tag = ANY if b is None else b
                r1 = recv(src=src, tag=tag, t=t)
                r2 = recv(src=src, tag=tag, t=t)
                got = bucketed.post_recv(r1)
                want = reference.post_recv(r2)
            if want is None:
                assert got is None
            else:
                assert got is not None
                # compare by content: the two mailboxes hold twin objects
                wm, wr = want
                assert (got.message.src, got.message.tag,
                        got.message.send_time) == (wm.src, wm.tag, wm.send_time)
                assert (got.recv.src, got.recv.tag, got.recv.post_time) == (
                    wr.src, wr.tag, wr.post_time)
        assert bucketed.outstanding() == (
            len(reference.pending), len(reference.posted))


class TestMatchingProperties:
    @settings(max_examples=100, deadline=None)
    @given(channel_traffic())
    def test_no_loss_no_duplication(self, ops):
        """Every send matches exactly one recv, in FIFO order per channel."""
        box = Mailbox(0)
        sent, matched = [], []
        t = 0.0
        for op in ops:
            t += 1.0
            if op == "send":
                m = msg(seq_time=t)
                sent.append(m.seq)
                result = box.deliver(m)
            else:
                result = box.post_recv(recv(t=t))
            if result is not None:
                matched.append(result.message.seq)
        assert len(matched) == len(sent)
        assert matched == sorted(matched)  # FIFO
        assert box.outstanding() == (0, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),  # (src, tag)
            min_size=1,
            max_size=30,
        )
    )
    def test_wildcard_drains_everything(self, sends):
        """ANY/ANY receives eventually drain every pending message."""
        box = Mailbox(0)
        for i, (src, tag) in enumerate(sends):
            box.deliver(msg(src=src, tag=tag, seq_time=float(i)))
        seqs = []
        for i in range(len(sends)):
            match = box.post_recv(recv(src=ANY, tag=ANY, t=100.0 + i))
            assert match is not None
            seqs.append(match.message.seq)
        assert box.outstanding() == (0, 0)
        assert seqs == sorted(seqs)  # arrival order
