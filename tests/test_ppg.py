"""PPG assembly tests: replication, comm edges, pruning, traversal steps."""

import pytest

from repro.ppg import build_ppg
from tests.conftest import profile_source

CHAIN = """def main() {
    for (var i = 0; i < 10; i = i + 1) {
        // extra work on rank 0 only (multiplier avoids an MPI-free branch,
        // which contraction would dissolve)
        compute(flops = 500000000 * (1 - min(rank, 1)) + 1000, name = "slow");
        if (rank > 0) { recv(src = rank - 1, tag = 1); }
        compute(flops = 1000000, name = "step");
        if (rank < nprocs - 1) { send(dest = rank + 1, tag = 1, bytes = 256); }
        allreduce(bytes = 8);
    }
}"""


@pytest.fixture(scope="module")
def chain_ppg():
    run, psg, _ = profile_source(CHAIN, nprocs=4)
    return build_ppg(psg, 4, run.profile, run.comm), psg, run


class TestStructure:
    def test_node_count(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        assert ppg.total_node_count() == 4 * len(psg)

    def test_perf_attached(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        slow = [v for v in psg.vertices.values() if v.name == "slow"][0]
        assert ppg.time((0, slow.vid)) > 0.1
        # other ranks execute it with ~zero work: sampled time ~ 0
        assert ppg.time((1, slow.vid)) < 0.01

    def test_vertex_times_across_ranks(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        step = [v for v in psg.vertices.values() if v.name == "step"][0]
        times = ppg.vertex_times(step.vid)
        assert len(times) == 4
        assert all(t >= 0 for t in times)

    def test_comm_edges_present_with_wait(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        # rank 1..3 recv from the left: waiting chain -> edges kept
        assert ppg.comm_edge_count() >= 3

    def test_is_queries(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        allr = [v for v in psg.mpi_vertices() if v.name == "MPI_Allreduce"][0]
        recv = [v for v in psg.mpi_vertices() if v.name == "MPI_Recv"][0]
        assert ppg.is_collective((0, allr.vid))
        assert not ppg.is_collective((0, recv.vid))
        assert ppg.is_mpi((2, recv.vid))
        assert ppg.is_root((1, psg.root_id))


class TestTraversalSteps:
    def test_data_dep_pred_is_prev_sibling(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        root_children = psg.root.children
        loop = psg.vertices[root_children[0]]
        kids = loop.children
        for a, b in zip(kids, kids[1:]):
            assert ppg.data_dep_pred((2, b)) == (2, a)

    def test_data_dep_pred_first_child_is_parent(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        loop = psg.vertices[psg.root.children[0]]
        first = loop.children[0]
        assert ppg.data_dep_pred((1, first)) == (1, loop.vid)

    def test_root_has_no_pred(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        assert ppg.data_dep_pred((0, psg.root_id)) is None

    def test_control_dep_pred_descends_to_body_end(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        loop = psg.vertices[psg.root.children[0]]
        assert ppg.control_dep_pred((3, loop.vid)) == (3, loop.children[-1])

    def test_comm_pred_points_to_sender(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        recv = [v for v in psg.mpi_vertices() if v.name == "MPI_Recv"][0]
        send = [v for v in psg.mpi_vertices() if v.name == "MPI_Send"][0]
        pred = ppg.comm_pred((1, recv.vid))
        assert pred == (0, send.vid)

    def test_collective_laggard_is_slow_rank(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        allr = [v for v in psg.mpi_vertices() if v.name == "MPI_Allreduce"][0]
        lag = ppg.collective_laggard(allr.vid)
        # the pipeline makes the last rank arrive last
        assert lag == 3


class TestPruning:
    def test_prune_removes_waitless_edges(self):
        # balanced ring: sendrecv partners arrive together; waits ~ 0
        src = """def main() {
            for (var i = 0; i < 5; i = i + 1) {
                compute(flops = 1000000);
                sendrecv(dest = (rank + 1) % nprocs, tag = 1, bytes = 64,
                         src = (rank - 1 + nprocs) % nprocs);
            }
        }"""
        run, psg, _ = profile_source(src, nprocs=4)
        # wire latency (~2us) counts as waiting; threshold above it prunes
        pruned = build_ppg(psg, 4, run.profile, run.comm, prune_no_wait=True,
                           wait_threshold=1e-4)
        full = build_ppg(psg, 4, run.profile, run.comm, prune_no_wait=False)
        assert pruned.comm_edge_count() < full.comm_edge_count()

    def test_full_graph_keeps_all_edges(self, chain_ppg):
        _, psg, run = chain_ppg
        full = build_ppg(psg, 4, run.profile, run.comm, prune_no_wait=False)
        assert full.comm_edge_count() == len(run.comm.edges)


class TestExport:
    def test_networkx_export(self, chain_ppg):
        ppg, psg, _ = chain_ppg
        g = ppg.to_networkx()
        assert g.number_of_nodes() == ppg.total_node_count()
        kinds = {d["kind"] for _u, _v, d in g.edges(data=True)}
        assert "control" in kinds and "comm" in kinds
        # comm edges cross ranks
        for u, v, d in g.edges(data=True):
            if d["kind"] == "comm":
                assert u[0] != v[0]
