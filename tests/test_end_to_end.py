"""End-to-end scenarios, including the paper's Fig. 2 motivating example:
an injected delay on one rank of CG found by backtracking."""

import pytest

from repro import DelayInjection, ScalAna, analyze_program
from repro.apps import get_app
from repro.detection import detect_scaling_loss


class TestFig2Motivating:
    """Inject a delay into process 4 of NPB-CG (paper Fig. 2) and check
    ScalAna localizes it."""

    @pytest.fixture(scope="class")
    def delayed_cg(self):
        spec = get_app("cg")
        # the matvec compute statement is the delay site (cg.mm line 12)
        line = next(
            v.location.line
            for v in spec.psg.vertices.values()
            if v.name == "matvec"
        )
        # the matvec takes ~49s/exec at 32 ranks; a 40s injected delay makes
        # rank 4 ~1.8x slower in that vertex, like the paper's experiment
        tool = ScalAna.for_app(
            spec,
            seed=1,
            injected_delays=[DelayInjection(4, "cg.mm", line, 40.0)],
        )
        runs = tool.profile_scales([8, 16, 32])
        return tool, runs, line

    def test_delay_slows_everyone(self, delayed_cg):
        tool, runs, _line = delayed_cg
        clean = ScalAna.for_app(get_app("cg"), seed=1)
        t_clean = clean.run_uninstrumented(32).total_time
        t_delayed = runs[-1].app_time
        assert t_delayed > t_clean * 1.2

    def test_rank4_abnormal(self, delayed_cg):
        tool, runs, line = delayed_cg
        report = tool.detect(runs)
        assert report.abnormal
        # rank 4 appears among the abnormal ranks of some vertex
        flagged_ranks = {
            r for ab in report.abnormal for r in ab.abnormal_ranks
        }
        assert 4 in flagged_ranks

    def test_backtracking_reaches_delay_site(self, delayed_cg):
        tool, runs, line = delayed_cg
        report = tool.detect(runs)
        assert report.root_causes
        locations = {rc.location for rc in report.root_causes}
        path_locations = {
            loc for rc in report.root_causes for loc in rc.path_locations
        }
        assert f"cg.mm:{line}" in locations | path_locations

    def test_paths_cross_processes(self, delayed_cg):
        tool, runs, _line = delayed_cg
        report = tool.detect(runs)
        assert any(len(rc.path_ranks) >= 2 for rc in report.root_causes)


class TestOneShotApi:
    def test_analyze_program_with_source(self):
        src = """def main() {
            for (var it = 0; it < 15; it = it + 1) {
                compute(flops = 100000000 / nprocs, name = "good");
                compute(flops = 10000000, name = "amdahl");
                barrier();
            }
        }"""
        report = analyze_program(src, [2, 4, 8], filename="oneshot.mm")
        assert report.scales == (2, 4, 8)
        assert report.nprocs == 8

    def test_analyze_program_with_app(self):
        report = analyze_program(get_app("sst"), [4, 8])
        assert report.root_causes

    def test_params_override(self):
        report = analyze_program(
            get_app("cg"), [4, 8], params={"niter": 3}
        )
        assert report.nprocs == 8


class TestScalAnaFacade:
    def test_static_analysis_cached(self):
        tool = ScalAna.for_app(get_app("ep"))
        a = tool.static_analysis()
        b = tool.static_analysis()
        assert a is b

    def test_profile_uses_app_machine(self):
        spec = get_app("nekbone")
        tool = ScalAna.for_app(spec)
        assert tool.machine.mem_speed_sigma > 0

    def test_abnorm_thd_knob(self):
        tool = ScalAna.for_app(get_app("sst"), abnorm_thd=3.0, seed=1)
        runs = tool.profile_scales([4, 8])
        strict = tool.detect(runs)
        tool.abnorm_thd = 1.1
        loose = tool.detect(runs)
        assert len(loose.abnormal) >= len(strict.abnormal)

    def test_max_loop_depth_knob(self):
        src = """def main() {
            for (var i = 0; i < 2; i = i + 1) {
                for (var j = 0; j < 2; j = j + 1) {
                    compute(flops = 1000);
                }
            }
            barrier();
        }"""
        deep = ScalAna(source=src, max_loop_depth=10)
        shallow = ScalAna(source=src, max_loop_depth=0)
        assert len(deep.psg) > len(shallow.psg)

    def test_single_scale_gives_abnormal_only(self):
        """With one scale there is no trend to fit: non-scalable detection
        is skipped, abnormal detection still runs."""
        tool = ScalAna.for_app(get_app("ep"), seed=1)
        runs = tool.profile_scales([4])
        report = detect_scaling_loss(runs, psg=tool.psg)
        assert report.non_scalable == []
