"""Scheduler bit-identity: calendar-queue runs reproduce heap runs exactly.

Mirrors ``tests/test_parallel_sim.py``'s identity gate for the
``sim_scheduler`` knob: across ~100 randomized workloads (wildcards,
collectives, imbalanced compute, irecv/waitall), serial and sharded, both
executors, the calendar queue must produce the same ``run_fingerprint``
and the same canonical detection report as the binary heap — the
scheduler is an execution strategy, not an analysis input.
"""

import random

import pytest

from repro.api import AnalysisConfig, Pipeline, run_fingerprint
from repro.api.config import canonical_json
from repro.minilang import parse_program
from repro.psg import build_psg
from repro.runtime import profile_run
from repro.simulator import SimulationConfig, simulate
from tests.conftest import IMBALANCED_SOURCE

# ----------------------------------------------------------------------
# randomized workload generator
# ----------------------------------------------------------------------

#: Communication patterns; each renders with rng-drawn constants.
def _ring(rng):
    return (
        f"        sendrecv(dest = (rank + 1) % nprocs, tag = {rng.randint(1, 3)}, "
        f"bytes = {rng.choice([64, 1024, 65536])}, "
        "src = (rank - 1 + nprocs) % nprocs);\n"
    )


#: Wildcard senders get a content-derived stagger so no two sends hit the
#: ANY-source receiver at *exactly* equal virtual times — the exact tie is
#: MPI-ambiguous and sits outside the serial bit-identity guarantee (see
#: test_parallel_sim.TestWildcardTieCarveOut); everything time-separated
#: is inside it.
_STAGGER = "compute(flops = 20000 * rank + floor(20000 * hashrand(rank, it)));"


def _wildcard_fan_in(rng):
    tag = rng.randint(1, 3)
    return (
        "        if (rank == 0) {\n"
        "            for (var i = 1; i < nprocs; i = i + 1) {\n"
        f"                recv(src = ANY, tag = {tag});\n"
        "            }\n"
        "        } else {\n"
        f"            {_STAGGER}\n"
        f"            send(dest = 0, tag = {tag}, bytes = {rng.choice([8, 256])});\n"
        "        }\n"
    )


def _wildcard_irecv_waitall(rng):
    root = rng.randint(0, 1)
    return (
        f"        if (rank == {root}) {{\n"
        "            for (var i = 0; i < nprocs - 1; i = i + 1) {\n"
        "                irecv(src = ANY, tag = ANY, req = r);\n"
        "            }\n"
        "            waitall();\n"
        f"            bcast(root = {root}, bytes = 8);\n"
        "        } else {\n"
        f"            {_STAGGER}\n"
        f"            send(dest = {root}, tag = rank, bytes = 128);\n"
        f"            bcast(root = {root}, bytes = 8);\n"
        "        }\n"
    )


def _collectives(rng):
    op = rng.choice(
        [
            "allreduce(bytes = 8);",
            "barrier();",
            f"bcast(root = {rng.randint(0, 2)}, bytes = 64);",
            f"reduce(root = {rng.randint(0, 2)}, bytes = 32);",
            "allgather(bytes = 16);",
        ]
    )
    return f"        {op}\n"


def _isend_ring_waitall(rng):
    tag = rng.randint(1, 2)
    return (
        f"        isend(dest = (rank + 1) % nprocs, tag = {tag}, "
        f"bytes = {rng.choice([512, 2048])}, req = s);\n"
        f"        irecv(src = (rank - 1 + nprocs) % nprocs, tag = {tag}, req = r);\n"
        "        waitall();\n"
    )


_PATTERNS = (
    _ring, _wildcard_fan_in, _wildcard_irecv_waitall,
    _collectives, _isend_ring_waitall,
)


def make_workload(seed: int) -> str:
    """One randomized MiniMPI program: imbalanced compute plus 1-3 comm
    patterns per loop iteration (time-separated wildcard races only — the
    exactly-tied ANY-source race sits outside the serial bit-identity
    guarantee; see test_parallel_sim.TestWildcardTieCarveOut)."""
    rng = random.Random(seed)
    iters = rng.randint(2, 4)
    imbalance = rng.choice(
        [
            "5000 * rank",
            "9000 * (rank % 3)",
            "floor(30000 * hashrand(rank, it))",
        ]
    )
    body = (
        f"        compute(flops = {rng.randint(4, 12)}0000 + {imbalance});\n"
    )
    for pattern in rng.sample(_PATTERNS, rng.randint(1, 3)):
        body += pattern(rng)
    return (
        "def main() {\n"
        f"    for (var it = 0; it < {iters}; it = it + 1) {{\n"
        + body
        + "    }\n"
        "}\n"
    )


def _compiled(source, name):
    program = parse_program(source, f"{name}.mm")
    return program, build_psg(program).psg


def _fingerprint(program, psg, nprocs, **cfg):
    run = profile_run(program, psg, SimulationConfig(nprocs=nprocs, **cfg))
    return run_fingerprint(run)


class TestRandomizedWorkloads:
    #: ~100 randomized workloads through the full identity check.
    SEEDS = range(100)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_calendar_matches_heap_serial_and_sharded(self, seed):
        source = make_workload(seed)
        rng = random.Random(10_000 + seed)
        nprocs = rng.randint(5, 9)
        program, psg = _compiled(source, f"rand{seed}")
        heap = _fingerprint(program, psg, nprocs, sim_scheduler="heap")
        calendar = _fingerprint(
            program, psg, nprocs, sim_scheduler="calendar"
        )
        assert calendar == heap, f"serial divergence on seed {seed}"
        sharded = _fingerprint(
            program, psg, nprocs,
            sim_scheduler="calendar",
            sim_shards=rng.randint(2, 4), sim_executor="inprocess",
        )
        assert sharded == heap, f"sharded divergence on seed {seed}"

    @pytest.mark.parametrize("seed", [0, 17, 33, 58, 76, 91])
    def test_process_executor_matches_too(self, seed):
        """Both executors: the multiprocess path ships the scheduler knob
        through the worker config unchanged."""
        source = make_workload(seed)
        program, psg = _compiled(source, f"randmp{seed}")
        heap = _fingerprint(program, psg, 6, sim_scheduler="heap")
        for scheduler in ("heap", "calendar"):
            sharded = _fingerprint(
                program, psg, 6,
                sim_scheduler=scheduler,
                sim_shards=2, sim_executor="process",
            )
            assert sharded == heap, (seed, scheduler)

    @pytest.mark.parametrize("seed", [3, 41])
    def test_trace_columns_identical_not_just_fingerprints(self, seed):
        source = make_workload(seed)
        program, psg = _compiled(source, f"randcols{seed}")
        results = {
            scheduler: simulate(
                program, psg,
                SimulationConfig(nprocs=7, sim_scheduler=scheduler),
            )
            for scheduler in ("heap", "calendar")
        }
        a, b = results["heap"], results["calendar"]
        assert a.finish_times == b.finish_times
        ca, cb = a.trace.columns(), b.trace.columns()
        for column in ca:
            assert ca[column].tolist() == cb[column].tolist(), column
        assert len(a.p2p_records) == len(b.p2p_records)
        assert a.trace.p2p.columns()["send_time"].tolist() == \
            b.trace.p2p.columns()["send_time"].tolist()


class TestCanonicalReport:
    def test_report_sha_identical_across_schedulers(self):
        """The BENCH_2-pinned acceptance shape: a calendar-queue analysis
        produces a detection report bit-identical to the heap's (whose
        serial sha is pinned by tests/test_detection_baseline.py)."""
        reports = {}
        for scheduler in ("heap", "calendar"):
            pipeline = Pipeline(
                source=IMBALANCED_SOURCE, filename="imbalanced.mm",
                config=AnalysisConfig(seed=0, sim_scheduler=scheduler),
            )
            doc = pipeline.run([4, 8, 16]).report.to_json_dict()
            doc["detection_seconds"] = 0.0
            reports[scheduler] = canonical_json(doc)
        assert reports["calendar"] == reports["heap"]

    def test_scheduler_is_digest_neutral(self):
        base = AnalysisConfig(seed=0)
        cal = AnalysisConfig(seed=0, sim_scheduler="calendar")
        assert base.digest() == cal.digest()
        assert AnalysisConfig.from_json(cal.to_json()) == cal
        # pre-scheduler documents load with the default
        import json

        doc = json.loads(base.to_json())
        del doc["sim_scheduler"]
        assert AnalysisConfig.from_dict(doc).sim_scheduler == "auto"
        with pytest.raises(ValueError):
            AnalysisConfig(sim_scheduler="fifo")
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=2, sim_scheduler="fifo")


class TestCLI:
    def test_sim_scheduler_flag_is_bit_identical(self, tmp_path, capsys):
        import json

        from repro.tools.cli import main

        source = tmp_path / "ring.mm"
        source.write_text(make_workload(5))
        outs = {}
        for scheduler in ("heap", "calendar"):
            assert main([
                "run", "--source", str(source), "--scales", "4,8", "--json",
                "--sim-scheduler", scheduler,
            ]) == 0
            doc = json.loads(capsys.readouterr().out)
            doc["detection_seconds"] = 0.0
            outs[scheduler] = doc
        assert outs["heap"] == outs["calendar"]
