"""Graph contraction tests, including the paper's Fig. 3/4 example and
hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang.parser import parse_program
from repro.psg import build_complete_psg, contract_psg
from repro.psg.graph import VertexType

FIG3 = """\
def main() {
    for (var i = 0; i < 100; i = i + 1) {
        compute(flops = 100, name = "fill");
        for (var j = 0; j < i; j = j + 1) {
            compute(flops = 10, name = "sum");
        }
        for (var k = 0; k < i; k = k + 1) {
            compute(flops = 10, name = "product");
        }
        foo();
        bcast(root = 0, bytes = 8);
    }
}

def foo() {
    if (rank % 2 == 0) {
        send(dest = rank + 1, tag = 0, bytes = 64);
    } else {
        recv(src = rank - 1, tag = 0);
    }
}
"""


class TestFig4Example:
    """The exact contraction example of the paper's Figs. 3 and 4."""

    def setup_method(self):
        self.prog = parse_program(FIG3, "fig3.mm")
        self.complete = build_complete_psg(self.prog)
        self.result = contract_psg(self.complete, max_loop_depth=1)
        self.psg = self.result.psg

    def test_complete_has_three_loops(self):
        stats = self.complete.stats()
        assert stats["loop"] == 3
        assert stats["mpi"] == 3

    def test_contracted_merges_inner_loops_into_one_comp(self):
        stats = self.psg.stats()
        assert stats["loop"] == 1  # only Loop 1 survives
        assert stats["comp"] == 1  # fill + Loop1.1 + Loop1.2 merged
        assert stats["mpi"] == 3  # MPI is always preserved
        assert stats["branch"] == 1  # contains MPI, preserved

    def test_merged_comp_owns_all_stmt_ids(self):
        comp = [
            v for v in self.psg.vertices.values() if v.vtype is VertexType.COMP
        ][0]
        assert len(comp.stmt_ids) >= 3  # 3 computes + 2 loop stmts

    def test_reduction_reported(self):
        assert self.result.vertices_before == len(self.complete)
        assert self.result.vertices_after < self.result.vertices_before
        assert 0 < self.result.reduction < 1

    def test_original_untouched(self):
        assert len(self.complete) == self.result.vertices_before

    def test_stmt_index_still_resolves_absorbed_statements(self):
        # every key of the complete index must resolve in the contracted one
        for (path, sid) in self.complete.stmt_index:
            vid = self.psg.lookup_stmt(path, sid)
            assert vid is not None
            assert vid in self.psg.vertices


class TestContractionRules:
    def test_mpi_loops_never_contracted(self):
        prog = parse_program(
            "def main() { for (var i = 0; i < 2; i = i + 1) {"
            " for (var j = 0; j < 2; j = j + 1) { allreduce(bytes = 8); } } }"
        )
        complete = build_complete_psg(prog)
        psg = contract_psg(complete, max_loop_depth=0).psg
        assert psg.stats()["loop"] == 2  # both kept: they contain MPI

    def test_max_loop_depth_zero_contracts_all_compute_loops(self):
        prog = parse_program(
            "def main() { for (var i = 0; i < 2; i = i + 1) {"
            " compute(flops = 1); } barrier(); }"
        )
        psg = contract_psg(build_complete_psg(prog), max_loop_depth=0).psg
        assert psg.stats()["loop"] == 0
        assert psg.stats()["comp"] == 1

    def test_max_loop_depth_one_keeps_outer(self):
        prog = parse_program(
            "def main() { for (var i = 0; i < 2; i = i + 1) {"
            " for (var j = 0; j < 2; j = j + 1) { compute(flops = 1); } }"
            " barrier(); }"
        )
        psg = contract_psg(build_complete_psg(prog), max_loop_depth=1).psg
        assert psg.stats()["loop"] == 1

    def test_branch_without_mpi_dissolved(self):
        prog = parse_program(
            "def main() { if (rank == 0) { compute(flops = 1); }"
            " else { compute(flops = 2); } barrier(); }"
        )
        psg = contract_psg(build_complete_psg(prog), max_loop_depth=10).psg
        assert psg.stats()["branch"] == 0

    def test_branch_with_preserved_loop_kept(self):
        prog = parse_program(
            "def main() { if (rank == 0) {"
            " for (var i = 0; i < 2; i = i + 1) { compute(flops = 1); } }"
            " barrier(); }"
        )
        psg = contract_psg(build_complete_psg(prog), max_loop_depth=10).psg
        assert psg.stats()["branch"] == 1
        assert psg.stats()["loop"] == 1

    def test_comp_runs_merge_but_not_across_mpi(self):
        prog = parse_program(
            "def main() { compute(flops = 1); compute(flops = 2);"
            " barrier(); compute(flops = 3); compute(flops = 4); }"
        )
        psg = contract_psg(build_complete_psg(prog)).psg
        assert psg.stats()["comp"] == 2

    def test_comps_not_merged_across_branch_arms(self):
        prog = parse_program(
            "def main() { if (rank == 0) { compute(flops = 1); barrier(); "
            "compute(flops = 2); } else { compute(flops = 3); } }"
        )
        psg = contract_psg(build_complete_psg(prog)).psg
        branch = [
            v for v in psg.vertices.values() if v.vtype is VertexType.BRANCH
        ][0]
        arms = [psg.vertices[c].arm for c in branch.children]
        assert "else" in arms  # else arm kept separate from then-arm comps

    def test_negative_depth_rejected(self):
        prog = parse_program("def main() { barrier(); }")
        with pytest.raises(ValueError):
            contract_psg(build_complete_psg(prog), max_loop_depth=-1)


@st.composite
def nested_programs(draw):
    """Programs with random loop/branch/compute/mpi nesting."""

    def block(depth):
        n = draw(st.integers(min_value=1, max_value=3))
        parts = []
        for _ in range(n):
            kind = draw(
                st.sampled_from(
                    ["compute", "mpi", "loop", "branch"] if depth < 3 else ["compute", "mpi"]
                )
            )
            if kind == "compute":
                parts.append("compute(flops = 10);")
            elif kind == "mpi":
                parts.append(
                    draw(st.sampled_from(["barrier();", "allreduce(bytes = 8);"]))
                )
            elif kind == "loop":
                parts.append(
                    f"for (var i{depth} = 0; i{depth} < 2; i{depth} = i{depth} + 1) "
                    f"{{ {block(depth + 1)} }}"
                )
            else:
                parts.append(f"if (rank % 2 == 0) {{ {block(depth + 1)} }}")
        return " ".join(parts)

    return f"def main() {{ {block(0)} }}"


class TestContractionProperties:
    @settings(max_examples=60, deadline=None)
    @given(nested_programs(), st.integers(min_value=0, max_value=3))
    def test_invariants(self, source, depth):
        prog = parse_program(source)
        complete = build_complete_psg(prog)
        result = contract_psg(complete, max_loop_depth=depth)
        psg = result.psg
        # 1. MPI vertices are always preserved exactly
        assert psg.stats()["mpi"] == complete.stats()["mpi"]
        # 2. contraction never grows the graph
        assert len(psg) <= len(complete)
        # 3. parent/child structure stays consistent
        for v in psg.vertices.values():
            for c in v.children:
                assert psg.vertices[c].parent == v.vid
            if v.parent is not None:
                assert v.vid in psg.vertices[v.parent].children
        # 4. every original statement key still resolves
        for (path, sid) in complete.stmt_index:
            assert psg.lookup_stmt(path, sid) in psg.vertices
        # 5. no loop deeper than the threshold survives without MPI
        for v in psg.vertices.values():
            if v.vtype is VertexType.LOOP and v.loop_depth > depth:
                assert psg.has_mpi_in_subtree(v.vid)
