"""TraceBuffer unit tests: columnar recording, lazy views, aggregation."""

import numpy as np
import pytest

from repro.minilang.ast_nodes import MpiOp
from repro.simulator import SegmentKind
from repro.simulator.events import Segment
from repro.simulator.trace import (
    CHUNK_EVENTS,
    MPI_OP_CODES,
    TraceBuffer,
    mpi_op_code,
)
from tests.conftest import run_source


def _fill(buf, events):
    for rank, vid, kind, start, end, wait, op in events:
        buf.append(rank, vid, kind, start, end, wait, op)


EVENTS = [
    (0, 3, 0, 0.0, 1.0, 0.0, -1),
    (0, 4, 1, 1.0, 1.5, 0.25, MPI_OP_CODES[MpiOp.RECV]),
    (1, 3, 0, 0.0, 0.5, 0.0, -1),
    (0, 3, 0, 1.5, 2.0, 0.0, -1),
    (1, 4, 1, 0.5, 0.75, 0.0, MPI_OP_CODES[MpiOp.SEND]),
]


class TestOpCodes:
    def test_round_trip_all_ops(self):
        for op in MpiOp:
            code = mpi_op_code(op)
            assert code >= 0
            buf = TraceBuffer()
            buf.append(0, 1, 1, 0.0, 1.0, 0.0, code)
            assert buf.segment(0).mpi_op is op

    def test_none_is_minus_one(self):
        assert mpi_op_code(None) == -1
        buf = TraceBuffer()
        buf.append(0, 1, 0, 0.0, 1.0, 0.0, -1)
        assert buf.segment(0).mpi_op is None


class TestSegmentsView:
    def test_len_getitem_iteration(self):
        buf = TraceBuffer()
        _fill(buf, EVENTS)
        view = buf.segments()
        assert len(view) == 5
        assert view[0] == Segment(0, 3, SegmentKind.COMPUTE, 0.0, 1.0)
        assert view[1].wait == 0.25
        assert view[1].mpi_op is MpiOp.RECV
        assert view[-1].rank == 1
        assert [s.vid for s in view] == [3, 4, 3, 3, 4]

    def test_slice_and_index_errors(self):
        buf = TraceBuffer()
        _fill(buf, EVENTS)
        view = buf.segments()
        assert [s.start for s in view[1:3]] == [1.0, 0.0]
        with pytest.raises(IndexError):
            view[5]
        with pytest.raises(IndexError):
            view[-6]

    def test_equality_with_lists(self):
        buf = TraceBuffer()
        assert buf.segments() == []
        _fill(buf, EVENTS)
        view = buf.segments()
        assert view == list(view)
        assert view != list(view)[:-1]
        assert view == buf.segments()

    def test_ring_mode_view_is_empty(self):
        buf = TraceBuffer(keep_events=False)
        _fill(buf, EVENTS)
        assert len(buf.segments()) == 0
        assert buf.segments() == []
        assert buf.event_count == 5  # events were counted, not kept


class TestAggregation:
    def _reference(self, events):
        """The old engine's streaming dict accumulation, verbatim."""
        time, wait_d, visits = {}, {}, {}
        for rank, vid, _kind, start, end, wait, _op in events:
            key = (rank, vid)
            time[key] = time.get(key, 0.0) + (end - start)
            if wait:
                wait_d[key] = wait_d.get(key, 0.0) + wait
            visits[key] = visits.get(key, 0) + 1
        return time, wait_d, visits

    def test_matches_streaming_reference_bitwise(self):
        buf = TraceBuffer()
        _fill(buf, EVENTS)
        time, wait, visits = self._reference(EVENTS)
        assert buf.vertex_time() == time
        assert buf.vertex_wait() == wait
        assert buf.vertex_visits() == visits

    def test_zero_wait_keys_absent(self):
        buf = TraceBuffer()
        _fill(buf, EVENTS)
        assert (1, 4) not in buf.vertex_wait()  # waited 0.0 only
        assert (0, 4) in buf.vertex_wait()

    def test_ring_mode_aggregates_match_kept_mode(self):
        kept = TraceBuffer(keep_events=True)
        ring = TraceBuffer(keep_events=False)
        rng = np.random.default_rng(7)
        events = [
            (int(r), int(v), 1, float(s), float(s) + float(d), float(w), -1)
            for r, v, s, d, w in zip(
                rng.integers(0, 4, 500),
                rng.integers(0, 6, 500),
                rng.random(500),
                rng.random(500),
                rng.random(500) * (rng.random(500) > 0.5),
            )
        ]
        _fill(kept, events)
        _fill(ring, events)
        assert kept.vertex_time() == ring.vertex_time()
        assert kept.vertex_wait() == ring.vertex_wait()
        assert kept.vertex_visits() == ring.vertex_visits()

    def test_counters_aggregate(self):
        buf = TraceBuffer()
        buf.append_counters(0, 3, 10.0, 20.0, 5.0, 1.0)
        buf.append_counters(0, 3, 1.0, 2.0, 0.5, 0.25)
        buf.append_counters(1, 3, 7.0, 7.0, 7.0, 7.0)
        agg = buf.vertex_counters()
        assert agg[(0, 3)].tot_ins == 11.0
        assert agg[(0, 3)].tot_cyc == 22.0
        assert agg[(0, 3)].tot_lst_ins == 5.5
        assert agg[(0, 3)].l2_dcm == 1.25
        assert agg[(1, 3)].tot_ins == 7.0

    def test_empty_buffer(self):
        buf = TraceBuffer()
        assert buf.vertex_time() == {}
        assert buf.vertex_wait() == {}
        assert buf.vertex_visits() == {}
        assert buf.vertex_counters() == {}
        assert len(buf.segments()) == 0


class TestChunking:
    def test_multi_chunk_columns(self, monkeypatch):
        import repro.simulator.trace as trace_mod

        monkeypatch.setattr(trace_mod, "CHUNK_EVENTS", 16)
        buf = TraceBuffer()
        events = [
            (r % 3, r % 5, 0, float(r), float(r) + 1.0, 0.0, -1)
            for r in range(100)
        ]
        _fill(buf, events)
        assert buf.event_count == 100
        cols = buf.columns()
        assert len(cols["rank"]) == 100
        assert cols["start"].tolist() == [float(r) for r in range(100)]
        ref_time, _ref_wait, ref_visits = TestAggregation()._reference(events)
        assert buf.vertex_time() == ref_time
        assert buf.vertex_visits() == ref_visits

    def test_ring_mode_folds_chunks(self, monkeypatch):
        import repro.simulator.trace as trace_mod

        monkeypatch.setattr(trace_mod, "CHUNK_EVENTS", 16)
        buf = TraceBuffer(keep_events=False)
        events = [
            (r % 3, r % 5, 0, float(r), float(r) + 1.0, 0.5, -1)
            for r in range(100)
        ]
        _fill(buf, events)
        ref_time, ref_wait, ref_visits = TestAggregation()._reference(events)
        assert buf.vertex_time() == ref_time
        assert buf.vertex_wait() == ref_wait
        assert buf.vertex_visits() == ref_visits
        # the ring kept no columns around
        assert len(buf.segments()) == 0

    def test_default_chunk_bound(self):
        assert CHUNK_EVENTS >= 1024  # appends amortize over real chunks


class TestSerialization:
    def test_round_trip(self):
        buf = TraceBuffer()
        _fill(buf, EVENTS)
        buf.append_counters(0, 3, 10.0, 20.0, 5.0, 1.0)
        doc = buf.to_doc()
        assert doc["format"] == "scalana-trace-v1"
        back = TraceBuffer.from_doc(doc)
        assert back.event_count == buf.event_count
        assert list(back.segments()) == list(buf.segments())
        assert back.vertex_counters() == buf.vertex_counters()
        assert back.vertex_time() == buf.vertex_time()

    def test_ring_mode_refuses_serialization(self):
        buf = TraceBuffer(keep_events=False)
        with pytest.raises(ValueError, match="ring-mode"):
            buf.to_doc()

    def test_bad_doc_rejected(self):
        with pytest.raises(ValueError, match="not a serialized TraceBuffer"):
            TraceBuffer.from_doc({"format": "nope"})


class TestEngineIntegration:
    def test_simulation_result_views_consistent(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 1000000); allreduce(bytes = 8); }",
            nprocs=4,
        )
        # the lazy views and the raw columns describe the same events
        assert res.trace.event_count == len(res.segments)
        cols = res.trace.columns()
        assert cols["end"].tolist() == [s.end for s in res.segments]
        total = sum(s.duration for s in res.segments if s.rank == 2)
        assert total == pytest.approx(res.finish_times[2], rel=1e-9)

    def test_record_segments_off_matches_on_aggregates(self):
        src = """def main() {
            for (var i = 0; i < 4; i = i + 1) {
                compute(flops = 100000 * (rank + 1));
                allreduce(bytes = 8);
            }
        }"""
        on, _, _ = run_source(src, nprocs=4)
        off, _, _ = run_source(src, nprocs=4, record_segments=False)
        assert off.segments == []
        assert on.vertex_time == off.vertex_time
        assert on.vertex_wait == off.vertex_wait
        assert on.vertex_visits == off.vertex_visits
        assert on.vertex_counters == off.vertex_counters
        assert on.finish_times == off.finish_times

    def test_nbytes_reports_columnar_footprint(self):
        res, _, _ = run_source(
            "def main() { compute(flops = 1000); barrier(); }", nprocs=2
        )
        res.trace.columns()  # seal
        assert res.trace.nbytes() > 0
        # 7 float64 event columns + 6 float64 counter columns
        expected = 8 * (7 * res.trace.event_count + 6 * res.trace.counter_count)
        assert res.trace.nbytes() == expected
