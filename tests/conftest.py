"""Shared fixtures: small programs and pipeline helpers."""

from __future__ import annotations

import pytest

from repro.minilang import parse_program
from repro.psg import build_psg
from repro.runtime import profile_run
from repro.simulator import SimulationConfig, simulate

#: The paper's Fig. 3 example program (two functions, nested loops, branch).
FIG3_SOURCE = """\
def main() {
    for (var i = 0; i < 10; i = i + 1) {
        compute(flops = 1000, name = "rand_fill");
        for (var j = 0; j < 8; j = j + 1) {
            compute(flops = 100, name = "sum");
        }
        for (var k = 0; k < 8; k = k + 1) {
            compute(flops = 100, name = "product");
        }
        foo();
        bcast(root = 0, bytes = 8);
    }
}

def foo() {
    if (rank % 2 == 0) {
        send(dest = rank + 1, tag = 5, bytes = 64);
    } else {
        recv(src = rank - 1, tag = 5);
    }
}
"""

#: A ring pipeline with an imbalanced rank: used for detection tests.
IMBALANCED_SOURCE = """\
def main() {
    for (var it = 0; it < 20; it = it + 1) {
        compute(flops = 10000000 / nprocs, bytes = 100000 / nprocs, name = "work");
        if (rank == 0) {
            compute(flops = 4000000, name = "extra");
        }
        isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 2048, req = s);
        irecv(src = (rank - 1 + nprocs) % nprocs, tag = 1, req = r);
        waitall();
        allreduce(bytes = 8);
    }
}
"""


@pytest.fixture(scope="session")
def fig3_program():
    return parse_program(FIG3_SOURCE, "fig3.mm")


@pytest.fixture(scope="session")
def fig3_static(fig3_program):
    return build_psg(fig3_program)


@pytest.fixture(scope="session")
def imbalanced_program():
    return parse_program(IMBALANCED_SOURCE, "imb.mm")


@pytest.fixture(scope="session")
def imbalanced_static(imbalanced_program):
    return build_psg(imbalanced_program)


def run_source(source, nprocs, params=None, filename="test.mm", seed=0, **cfg):
    """Parse + analyze + simulate in one call (ground truth only)."""
    program = parse_program(source, filename)
    psg = build_psg(program).psg
    config = SimulationConfig(nprocs=nprocs, params=params or {}, seed=seed, **cfg)
    return simulate(program, psg, config), psg, program


def profile_source(source, nprocs, params=None, filename="test.mm", seed=0, **kw):
    """Parse + analyze + profile (ScalAna runtime view)."""
    program = parse_program(source, filename)
    psg = build_psg(program).psg
    config = SimulationConfig(nprocs=nprocs, params=params or {}, seed=seed)
    return profile_run(program, psg, config, **kw), psg, program
