"""Cross-rank op-record sharing is bit-identical to per-rank interpretation.

The per-rank interpreter is the bit-identity oracle: with
``sim_class_sharing`` on, statements the rank-dependence analysis proves
constant share one op record across all ranks of an engine — and nothing
else may change.  Mirrors the scheduler/sharding identity gates: same
randomized workloads, fingerprints plus canonical detection reports,
serial and sharded, both executors, both schedulers.
"""

import random

import pytest

from repro.api import AnalysisConfig, Pipeline
from repro.api.config import canonical_json
from repro.simulator import SimulationConfig
from tests.conftest import IMBALANCED_SOURCE
from tests.test_scheduler_identity import _compiled, _fingerprint, make_workload


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", range(0, 100, 4))
    def test_sharing_matches_per_rank_oracle(self, seed):
        source = make_workload(seed)
        rng = random.Random(20_000 + seed)
        nprocs = rng.randint(5, 9)
        program, psg = _compiled(source, f"share{seed}")
        oracle = _fingerprint(program, psg, nprocs, sim_class_sharing=False)
        shared = _fingerprint(program, psg, nprocs, sim_class_sharing=True)
        assert shared == oracle, f"serial divergence on seed {seed}"
        sharded = _fingerprint(
            program, psg, nprocs,
            sim_class_sharing=True,
            sim_shards=rng.randint(2, 4), sim_executor="inprocess",
        )
        assert sharded == oracle, f"sharded divergence on seed {seed}"

    @pytest.mark.parametrize("seed", [2, 37, 64])
    def test_process_executor_and_both_schedulers(self, seed):
        source = make_workload(seed)
        program, psg = _compiled(source, f"sharemp{seed}")
        oracle = _fingerprint(program, psg, 6, sim_class_sharing=False)
        for scheduler in ("heap", "calendar"):
            for extra in (
                {},
                dict(sim_shards=2, sim_executor="process"),
            ):
                fp = _fingerprint(
                    program, psg, 6,
                    sim_class_sharing=True, sim_scheduler=scheduler, **extra,
                )
                assert fp == oracle, (seed, scheduler, extra)


class TestSharingEngages:
    def test_const_stmts_found_on_bundled_apps(self):
        """Meta-check: the identity gate is not vacuous — the analysis
        proves shareable statements on real apps."""
        from repro.analysis import analyze_program
        from repro.apps import get_app

        app = get_app("cg")
        analysis = analyze_program(app.program, 8, app.params)
        assert analysis.const_stmts

    def test_app_fingerprints_identical_with_sharing(self):
        from repro.apps import get_app
        from repro.runtime import profile_run
        from repro.api import run_fingerprint

        app = get_app("cg")
        fps = {
            flag: run_fingerprint(
                profile_run(
                    app.program, app.psg,
                    SimulationConfig(
                        nprocs=8, params=app.params, sim_class_sharing=flag
                    ),
                )
            )
            for flag in (False, True)
        }
        assert fps[True] == fps[False]

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=2, sim_class_sharing="on")
        with pytest.raises(ValueError):
            AnalysisConfig(sim_class_sharing=1)


class TestCanonicalReport:
    def test_report_sha_identical_with_and_without_sharing(self):
        reports = {}
        for flag in (False, True):
            pipeline = Pipeline(
                source=IMBALANCED_SOURCE, filename="imbalanced.mm",
                config=AnalysisConfig(seed=0, sim_class_sharing=flag),
            )
            doc = pipeline.run([4, 8, 16]).report.to_json_dict()
            doc["detection_seconds"] = 0.0
            reports[flag] = canonical_json(doc)
        assert reports[True] == reports[False]

    def test_sharing_is_digest_neutral(self):
        base = AnalysisConfig(seed=0)
        off = AnalysisConfig(seed=0, sim_class_sharing=False)
        assert base.digest() == off.digest()
        assert AnalysisConfig.from_json(off.to_json()) == off
        # pre-knob documents load with the default
        import json

        doc = json.loads(base.to_json())
        doc.pop("sim_class_sharing", None)
        assert AnalysisConfig.from_dict(doc).sim_class_sharing is True
