"""AnalysisConfig: validation, JSON round trip, digest stability."""

import pytest

from repro.api import AnalysisConfig, source_digest
from repro.detection.aggregation import AggregationStrategy
from repro.simulator import DelayInjection, MachineModel, NetworkModel


def full_config() -> AnalysisConfig:
    """A config with every field away from its default."""
    return AnalysisConfig(
        params={"n": 64, "iters": 10},
        machine=MachineModel(flop_rate=1.0e9, noise_sigma=0.1),
        network=NetworkModel(latency=5.0e-6, bandwidth=1.0e9),
        max_loop_depth=3,
        abnorm_thd=2.5,
        freq_hz=100.0,
        seed=42,
        repetitions=3,
        aggregation=AggregationStrategy.MEDIAN,
        injected_delays=(DelayInjection(rank=4, filename="a.mm", line=3,
                                        extra_seconds=0.5),),
    )


class TestValidation:
    def test_defaults_valid(self):
        AnalysisConfig()

    def test_rejects_negative_loop_depth(self):
        with pytest.raises(ValueError, match="max_loop_depth"):
            AnalysisConfig(max_loop_depth=-1)

    def test_zero_loop_depth_allowed(self):
        assert AnalysisConfig(max_loop_depth=0).max_loop_depth == 0

    def test_rejects_abnorm_thd_at_most_one(self):
        with pytest.raises(ValueError, match="abnorm_thd"):
            AnalysisConfig(abnorm_thd=1.0)

    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ValueError, match="freq_hz"):
            AnalysisConfig(freq_hz=0.0)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError, match="repetitions"):
            AnalysisConfig(repetitions=0)

    def test_rejects_bad_delay_entries(self):
        with pytest.raises(ValueError, match="DelayInjection"):
            AnalysisConfig(injected_delays=("nope",))

    def test_aggregation_accepts_enum_value_string(self):
        cfg = AnalysisConfig(aggregation="median")
        assert cfg.aggregation is AggregationStrategy.MEDIAN

    def test_frozen(self):
        cfg = AnalysisConfig()
        with pytest.raises(AttributeError):
            cfg.seed = 5

    def test_injected_delays_normalized_to_tuple(self):
        d = DelayInjection(rank=0, filename="x", line=1, extra_seconds=0.1)
        cfg = AnalysisConfig(injected_delays=[d])
        assert cfg.injected_delays == (d,)


class TestJsonRoundTrip:
    def test_default_round_trips(self):
        cfg = AnalysisConfig()
        assert AnalysisConfig.from_json(cfg.to_json()) == cfg

    def test_full_round_trips(self):
        cfg = full_config()
        back = AnalysisConfig.from_json(cfg.to_json())
        assert back == cfg
        assert back.machine == cfg.machine
        assert back.network == cfg.network
        assert back.injected_delays == cfg.injected_delays
        assert back.aggregation is AggregationStrategy.MEDIAN

    def test_infinite_freq_round_trips(self):
        cfg = AnalysisConfig(freq_hz=float("inf"))
        back = AnalysisConfig.from_json(cfg.to_json())
        assert back.freq_hz == float("inf")

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="scalana-config-v1"):
            AnalysisConfig.from_dict({"format": "something-else"})


class TestDigest:
    def test_equal_configs_equal_digests(self):
        assert full_config().digest() == full_config().digest()

    def test_digest_survives_round_trip(self):
        cfg = full_config()
        assert AnalysisConfig.from_json(cfg.to_json()).digest() == cfg.digest()

    def test_params_order_irrelevant(self):
        a = AnalysisConfig(params={"x": 1, "y": 2})
        b = AnalysisConfig(params={"y": 2, "x": 1})
        assert a.digest() == b.digest()

    def test_every_knob_changes_the_digest(self):
        base = AnalysisConfig()
        variants = [
            base.with_overrides(params={"n": 1}),
            base.with_overrides(machine=MachineModel(flop_rate=1.0)),
            base.with_overrides(network=NetworkModel(latency=1.0)),
            base.with_overrides(max_loop_depth=1),
            base.with_overrides(abnorm_thd=9.9),
            base.with_overrides(freq_hz=17.0),
            base.with_overrides(seed=123),
            base.with_overrides(repetitions=2),
            base.with_overrides(aggregation=AggregationStrategy.MAX),
            base.with_overrides(injected_delays=(
                DelayInjection(rank=0, filename="f", line=1, extra_seconds=1.0),
            )),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1  # all distinct

    def test_source_digest_depends_on_source_and_filename(self):
        assert source_digest("a", "f.mm") != source_digest("b", "f.mm")
        assert source_digest("a", "f.mm") != source_digest("a", "g.mm")
        assert source_digest("a", "f.mm") == source_digest("a", "f.mm")


class TestBridges:
    def test_simulation_config_carries_knobs(self):
        cfg = full_config()
        sim = cfg.simulation_config(8)
        assert sim.nprocs == 8
        assert sim.seed == 42
        assert sim.machine == cfg.machine
        assert sim.params == {"n": 64, "iters": 10}
        assert list(sim.injected_delays) == list(cfg.injected_delays)

    def test_simulation_config_overrides(self):
        sim = full_config().simulation_config(4, seed=7)
        assert sim.seed == 7

    def test_for_app_picks_up_app_defaults(self):
        from repro.apps import get_app

        app = get_app("nekbone")  # has a machine override
        cfg = AnalysisConfig.for_app(app, seed=3)
        assert cfg.params == dict(app.params)
        assert cfg.machine == app.machine
        assert cfg.seed == 3
