"""The observability layer: metrics registry, spans, events — and the
bit-identity guarantee that none of it changes analysis results.

Covers the PR-8 acceptance gates:

* registry snapshot/merge sums counters and histogram buckets *exactly*
  (serial == sharded, inprocess == multiprocess workers);
* ``run_fingerprint`` and ``canonical_report_sha`` are identical with
  observability on or off, across executors and schedulers;
* config digests ignore ``obs_metrics`` / ``obs_spans`` (digest-neutral);
* the disabled paths are structurally free (shared ``NULL_SPAN``,
  empty-bus early return), not just fast.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.api import (
    AnalysisConfig,
    Pipeline,
    Session,
    canonical_report_sha,
    run_fingerprint,
)
from repro.apps import get_app
from repro.obs import (
    NULL_SPAN,
    Event,
    EventBus,
    MetricsRegistry,
    RunMetrics,
    SpanRecorder,
    series_key,
)
from repro.simulator import add_simulation_calls, simulation_call_count

SOURCE = """\
def main() {
    for (var i = 0; i < 5; i = i + 1) {
        compute(flops = 10000000 / nprocs, name = "work");
        isend(dest = (rank + 1) % nprocs, tag = 1, bytes = 1024, req = s);
        irecv(src = (rank - 1 + nprocs) % nprocs, tag = 1, req = r);
        waitall();
        allreduce(bytes = 8);
    }
}
"""


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_counter_inc_and_default(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(5)
        assert reg.snapshot().counter("x") == 6
        assert reg.snapshot().counter("absent", default=-1) == -1

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", app="cg").inc(2)
        reg.counter("cache.hits", app="ep").inc(3)
        snap = reg.snapshot()
        assert snap.counter("cache.hits{app=cg}") == 2
        assert snap.counter("cache.hits{app=ep}") == 3

    def test_series_key_sorts_labels(self):
        assert series_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
        assert series_key("m", {}) == "m"

    def test_snapshot_merge_sums_exactly(self):
        parts = []
        for n in (3, 4):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            reg.gauge("g").set(float(n))
            h = reg.histogram("h", bounds=(1.0, 2.0))
            for v in (0.5, 1.5, 99.0):
                h.observe(v * n)
            parts.append(reg.snapshot())
        merged = RunMetrics.merge(parts + [None])  # None parts are skipped
        assert merged.counter("c") == 7
        assert merged.gauge("g") == 4.0  # gauges keep the max
        doc = merged.histograms["h"]
        assert doc["count"] == 6
        assert sum(doc["counts"]) == 6
        assert doc["sum"] == pytest.approx(sum((0.5, 1.5, 99.0)) * 7)

    def test_histogram_merge_rejects_differing_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="differing bounds"):
            RunMetrics.merge([a.snapshot(), b.snapshot()])

    def test_histogram_quantile_overflow_renders_honestly(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0))
        for _ in range(10):
            h.observe(50.0)  # all overflow
        snap = reg.snapshot()
        assert snap.histogram_quantile("h", 0.5) == 2.0  # largest bound
        assert "p50>2" in snap.render()

    def test_json_round_trip_and_validation(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        doc = snap.to_json_dict()
        assert doc["format"] == "scalana-metrics-v1"
        back = RunMetrics.from_json_dict(json.loads(json.dumps(doc)))
        assert back == snap

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.update(format="nope"), "not a"),
            (
                lambda d: d["histograms"]["h"].update(counts=[1]),
                "need bounds",
            ),
            (
                lambda d: d["histograms"]["h"].update(count=7),
                "sum of buckets",
            ),
            (
                lambda d: d["counters"].update(c="NaN-ish"),
                "not numeric",
            ),
        ],
    )
    def test_from_json_dict_rejects_malformed(self, mutate, match):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        doc = reg.snapshot().to_json_dict()
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            RunMetrics.from_json_dict(doc)

    def test_merge_snapshot_folds_into_registry(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(1)
        b.merge_snapshot(a.snapshot())
        assert b.snapshot().counter("c") == 3
        assert b.snapshot().histograms["h"]["count"] == 1

    def test_run_metrics_is_picklable(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap


# ---------------------------------------------------------------------------
# spans


class TestSpans:
    def test_disabled_span_is_the_shared_null_singleton(self):
        """The hot-loop contract: a disabled recorder hands out one shared
        object — no allocation, no bookkeeping, nothing to collect."""
        rec = SpanRecorder()
        assert rec.span("x") is NULL_SPAN
        assert rec.span("y", a=1) is NULL_SPAN
        assert rec.event_count == 0

    def test_module_level_span_disabled_by_default(self):
        assert obs.span("anything") is NULL_SPAN

    def test_enabled_scope_records_chrome_complete_events(self):
        rec = SpanRecorder()
        with rec.enabled_scope():
            with rec.span("outer", nprocs=8), rec.span("inner"):
                pass
            rec.instant("marker", note="hi")
        assert rec.span("after") is NULL_SPAN  # scope ended
        trace = rec.to_chrome_trace()
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner", "marker"]
        outer = events[0]
        assert outer["ph"] == "X"
        assert outer["dur"] >= events[1]["dur"]
        assert outer["args"] == {"nprocs": 8}
        assert events[2]["ph"] == "i"

    def test_nested_enabled_scopes_are_depth_counted(self):
        rec = SpanRecorder()
        with rec.enabled_scope():
            with rec.enabled_scope():
                pass
            with rec.span("still-on"):
                pass
        assert rec.event_count == 1

    def test_dump_writes_chrome_trace_json(self, tmp_path):
        rec = SpanRecorder()
        with rec.enabled_scope(), rec.span("s"):
            pass
        path = tmp_path / "trace.json"
        rec.dump(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "s"


# ---------------------------------------------------------------------------
# event bus


class TestEventBus:
    def test_emit_without_subscribers_is_a_noop(self):
        bus = EventBus()
        assert not bus.active
        bus.emit("anything", x=1)  # must not raise, must not allocate Events

    def test_subscribe_emit_unsubscribe(self):
        bus = EventBus()
        got: list[Event] = []
        unsub = bus.subscribe(got.append)
        assert bus.active
        bus.emit("k", a=1)
        unsub()
        bus.emit("k", a=2)
        assert [(e.kind, e.data) for e in got] == [("k", {"a": 1})]

    def test_subscriber_exceptions_are_swallowed(self):
        bus = EventBus()
        def boom(_ev):
            raise RuntimeError("broken renderer")
        got = []
        bus.subscribe(boom)
        bus.subscribe(got.append)
        bus.emit("k")
        assert len(got) == 1  # later subscribers still ran

    def test_queue_subscriber_drops_when_full(self):
        bus = EventBus()
        q, unsub = bus.subscribe_queue(maxsize=1)
        bus.emit("a")
        bus.emit("b")  # dropped, not blocking
        unsub()
        assert q.get_nowait().kind == "a"
        assert q.empty()


# ---------------------------------------------------------------------------
# digest neutrality + identity gates


class TestDigestNeutrality:
    def test_obs_knobs_do_not_change_the_digest(self):
        base = AnalysisConfig()
        on = AnalysisConfig(obs_metrics=True, obs_spans=True)
        assert base.digest() == on.digest()

    def test_obs_knobs_round_trip_but_stay_non_default_only(self):
        on = AnalysisConfig(obs_metrics=True, obs_spans=True)
        assert AnalysisConfig.from_dict(on.to_dict()) == on
        assert "obs_metrics" not in AnalysisConfig().to_dict()
        assert "obs_spans" not in AnalysisConfig().to_dict()

    def test_cache_keys_shared_across_obs_settings(self, tmp_path):
        """obs on must *hit* the artifacts an obs-off run stored."""
        session = Session(cache_dir=tmp_path / "cache")
        session.pipeline(SOURCE, seed=1).profile(4)
        art = session.pipeline(SOURCE, seed=1, obs_metrics=True).profile(4)
        assert art.cached


IDENTITY_VARIANTS = [
    {},
    {"sim_shards": 2},
    {"sim_shards": 2, "sim_executor": "process"},
    {"sim_scheduler": "calendar"},
]


class TestIdentityGates:
    @pytest.fixture(scope="class")
    def baseline(self):
        pipe = Pipeline(source=SOURCE, config=AnalysisConfig(seed=2))
        arts = pipe.profile_scales([4, 8])
        report = pipe.detect(arts)
        return (
            [run_fingerprint(a.run) for a in arts],
            canonical_report_sha(report),
        )

    @pytest.mark.parametrize(
        "extra", IDENTITY_VARIANTS,
        ids=["serial", "sharded", "sharded-mp", "calendar"],
    )
    def test_bit_identical_with_obs_on(self, baseline, extra):
        fps, sha = baseline
        config = AnalysisConfig(
            seed=2, obs_metrics=True, obs_spans=True, **extra
        )
        pipe = Pipeline(source=SOURCE, config=config)
        arts = pipe.profile_scales([4, 8])
        report = pipe.detect(arts)
        assert [run_fingerprint(a.run) for a in arts] == fps
        assert canonical_report_sha(report) == sha
        assert report.metrics is not None
        assert report.metrics.counter("engine.mpi_calls") > 0

    def test_metrics_section_only_when_enabled(self):
        pipe = Pipeline(source=SOURCE, config=AnalysisConfig(seed=2))
        report = pipe.detect(pipe.profile_scales([4, 8]))
        assert "metrics" not in report.to_json_dict()
        assert report.metrics is None


class TestShardedMergeExactness:
    """The PR acceptance gate: worker registries ship back in ShardFinal
    and merge with counts summing exactly — equal to the serial run."""

    ENGINE_SERIES = (
        "engine.mpi_calls",
        "engine.compute_ops",
        "engine.trace_events",
        "engine.p2p_matches",
        "engine.collectives",
    )

    def _metrics(self, **extra):
        config = AnalysisConfig(seed=0, obs_metrics=True, **extra)
        art = Pipeline(source=SOURCE, config=config).profile(8)
        assert art.metrics is not None
        return art.metrics

    @pytest.mark.parametrize("executor", ["inprocess", "process"])
    def test_sharded_counts_equal_serial(self, executor):
        serial = self._metrics()
        sharded = self._metrics(sim_shards=2, sim_executor=executor)
        for key in self.ENGINE_SERIES:
            assert sharded.counter(key) == serial.counter(key), key
        # one engine per shard ran
        assert serial.counter("engine.runs") == 1
        assert sharded.counter("engine.runs") == 2
        # per-rank finish-time histograms merge to the identical doc
        assert (
            sharded.histograms["engine.rank_finish_seconds"]
            == serial.histograms["engine.rank_finish_seconds"]
        )
        # coordinator bookkeeping rides in the same snapshot
        assert sharded.counter("parallel.rounds") > 0

    def test_parallel_stats_derive_from_merged_metrics(self):
        config = AnalysisConfig(seed=0, obs_metrics=True, sim_shards=2)
        art = Pipeline(source=SOURCE, config=config).profile(8)
        stats = art.run.result.parallel_stats
        assert stats.rounds == art.metrics.counter("parallel.rounds")
        assert stats.messages_routed == art.metrics.counter(
            "parallel.messages_routed"
        )


# ---------------------------------------------------------------------------
# satellite 1: simulation_call_count compat view


class TestSimulationCallCountCompat:
    def test_backed_by_registry_counter(self):
        before = simulation_call_count()
        assert before == obs.registry.counter("sim.engine_runs").value
        add_simulation_calls(3)
        assert simulation_call_count() == before + 3
        assert obs.registry.counter("sim.engine_runs").value == before + 3

    def test_engine_runs_still_increment_it(self):
        before = simulation_call_count()
        Pipeline(source=SOURCE, config=AnalysisConfig(seed=0)).profile(4)
        assert simulation_call_count() > before


# ---------------------------------------------------------------------------
# satellite 2: registry-backed CacheStats + cache events (satellite 6)


class TestCacheStatsAndEvents:
    def test_cache_stats_reads_come_from_counters(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        session.pipeline(SOURCE, seed=1).profile_scales([4, 8])
        session.pipeline(SOURCE, seed=1).profile_scales([4, 8])
        stats = session.stats
        assert (stats.hits, stats.misses, stats.stores) == (2, 2, 2)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.5
        assert stats.bytes_written > 0
        snap = stats.registry.snapshot()
        assert snap.counter("cache.hits") == 2
        assert snap.counter("cache.misses") == 2

    def test_cached_sweep_emits_live_cache_events(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        session.sweep([get_app("ep")], [4, 8], jobs=2)
        events: list[Event] = []
        unsub = obs.subscribe(events.append)
        try:
            session.sweep([get_app("ep")], [4, 8], jobs=2)
        finally:
            unsub()
        kinds = [e.kind for e in events]
        assert kinds.count("cache_hit") == 2
        assert kinds.count("cell_finished") == 2
        assert kinds[0] == "sweep_started" and kinds[-1] == "sweep_finished"
        # hit counts in the event let renderers show live ratios
        hit = next(e for e in events if e.kind == "cache_hit")
        assert hit.data["hits"] >= 1 and "nprocs" in hit.data

    def test_run_emits_scale_lifecycle_events(self):
        events: list[Event] = []
        unsub = obs.subscribe(events.append)
        try:
            Pipeline(source=SOURCE, config=AnalysisConfig(seed=0)).run([4, 8])
        finally:
            unsub()
        kinds = [e.kind for e in events]
        assert kinds[0] == "run_started" and kinds[-1] == "run_finished"
        assert kinds.count("scale_started") == 2
        assert kinds.count("scale_finished") == 2

    def test_lint_scales_emits_witness_events(self):
        events: list[Event] = []
        unsub = obs.subscribe(events.append)
        try:
            Pipeline(
                source=SOURCE, config=AnalysisConfig(seed=0)
            ).lint(scales="4..16")
        finally:
            unsub()
        kinds = [e.kind for e in events]
        assert "lint_scales_started" in kinds
        assert "lint_scales_finished" in kinds
        assert kinds.count("lint_witness_finished") >= 2

    def test_sharded_rounds_emit_progress(self):
        events: list[Event] = []
        unsub = obs.subscribe(events.append)
        try:
            config = AnalysisConfig(seed=0, sim_shards=2)
            Pipeline(source=SOURCE, config=config).profile(8)
        finally:
            unsub()
        rounds = [e for e in events if e.kind == "round_completed"]
        assert rounds
        assert all("messages" in e.data for e in rounds)


# ---------------------------------------------------------------------------
# CLI surface


class TestCli:
    def test_run_metrics_appends_block(self, capsys):
        from repro.tools.cli import main

        assert main(["run", "--app", "ep", "--scales", "4,8", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "engine.mpi_calls" in out

    def test_run_json_includes_metrics_section(self, capsys):
        from repro.tools.cli import main

        main(["run", "--app", "ep", "--scales", "4,8", "--metrics", "--json"])
        doc = json.loads(capsys.readouterr().out)
        RunMetrics.from_json_dict(doc["metrics"])  # validates

    def test_metrics_dump_is_valid_schema(self, capsys):
        from repro.tools.cli import main

        assert main(["metrics-dump", "--app", "ep", "--scales", "4,8"]) == 0
        doc = json.loads(capsys.readouterr().out)
        snap = RunMetrics.from_json_dict(doc)
        assert snap.counter("engine.runs") == 2

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        from repro.tools.cli import main

        path = tmp_path / "trace.json"
        main(["run", "--app", "ep", "--scales", "4,8",
              "--trace-out", str(path)])
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"pipeline.profile", "engine.run", "pipeline.detect"} <= names

    def test_progress_renderer_formats_events(self):
        from repro.tools.cli import ProgressRenderer

        stream = io.StringIO()
        render = ProgressRenderer(stream=stream)
        render(Event("sweep_started", {"cells": 2, "apps": ["ep"],
                                       "scales": [4, 8]}))
        render(Event("cache_hit", {"digest": "d", "nprocs": 4,
                                   "hits": 1, "misses": 0}))
        render(Event("cell_finished", {"app": "ep", "nprocs": 4,
                                       "cached": True, "done": 1,
                                       "total": 2}))
        render(Event("sweep_finished", {"cells": 2, "cache_hits": 2,
                                        "seconds": 0.5}))
        out = stream.getvalue()
        assert "[progress] sweep 2 cells" in out
        assert "cache 1/1" in out  # live hit ratio folded into the line
        assert "sweep finished" in out

    def test_progress_flag_streams_to_stderr(self, capsys):
        from repro.tools.cli import main

        main(["run", "--app", "ep", "--scales", "4,8", "--progress"])
        err = capsys.readouterr().err
        assert "[progress] p=4 profiling..." in err
        assert "[progress] p=8 done" in err


# ---------------------------------------------------------------------------
# overhead smoke


class TestOverhead:
    def test_disabled_obs_leaves_no_trace_state(self):
        """With obs off, a full analysis records no spans and touches no
        process-global metric series beyond the sim-run counter."""
        obs.tracer.clear()
        Pipeline(source=SOURCE, config=AnalysisConfig(seed=0)).run([4, 8])
        assert obs.tracer.event_count == 0
        assert not obs.bus.active

    def test_metrics_on_overhead_is_bounded(self):
        """Aggregate-granularity instruments: the obs-on run must stay
        within a generous constant factor of the obs-off run."""
        import time

        pipe_off = Pipeline(source=SOURCE, config=AnalysisConfig(seed=0))
        pipe_on = Pipeline(
            source=SOURCE,
            config=AnalysisConfig(seed=0, obs_metrics=True, obs_spans=True),
        )
        pipe_off.static()
        pipe_on.static()
        t0 = time.perf_counter()
        pipe_off.profile_scales([8, 16])
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        pipe_on.profile_scales([8, 16])
        instrumented = time.perf_counter() - t0
        # generous: CI boxes are noisy; the real ratio is ~1.0
        assert instrumented <= base * 3 + 0.25
