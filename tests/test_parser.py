"""Parser tests: statements, expressions, MPI surface, error paths."""

import pytest

from repro.minilang import ast_nodes as ast
from repro.minilang.errors import ParseError
from repro.minilang.parser import parse_program


def parse_main_body(body: str) -> list[ast.Stmt]:
    prog = parse_program("def main() {\n" + body + "\n}")
    return prog.entry.body.statements


class TestTopLevel:
    def test_multiple_functions(self):
        prog = parse_program("def main() {} def foo(a, b) {}")
        assert set(prog.functions) == {"main", "foo"}
        assert prog.function("foo").params == ["a", "b"]

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError, match="duplicate function"):
            parse_program("def f() {} def f() {}")

    def test_entry_property(self):
        prog = parse_program("def main() {}")
        assert prog.entry.name == "main"

    def test_missing_function_lookup(self):
        prog = parse_program("def main() {}")
        with pytest.raises(KeyError):
            prog.function("nope")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("def main() { var x = 1;")


class TestStatements:
    def test_var_decl_with_and_without_init(self):
        stmts = parse_main_body("var a; var b = 3;")
        assert isinstance(stmts[0], ast.VarDecl) and stmts[0].init is None
        assert isinstance(stmts[1].init, ast.IntLit)

    def test_assignment(self):
        (stmt,) = parse_main_body("x = 1 + 2;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.BinaryExpr)

    def test_for_loop_full_header(self):
        (stmt,) = parse_main_body("for (var i = 0; i < 3; i = i + 1) { }")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.cond, ast.BinaryExpr)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_loop_empty_clauses(self):
        (stmt,) = parse_main_body("for (;;) { }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_loop(self):
        (stmt,) = parse_main_body("while (x < 3) { }")
        assert isinstance(stmt, ast.WhileStmt)

    def test_if_else(self):
        (stmt,) = parse_main_body("if (rank == 0) { } else { }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body is not None

    def test_else_if_chains(self):
        (stmt,) = parse_main_body(
            "if (a == 1) { } else if (a == 2) { } else { }"
        )
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.IfStmt)
        assert nested.else_body is not None

    def test_return_with_value(self):
        prog = parse_program("def f() { return 1 + 2; } def main() {}")
        stmt = prog.function("f").body.statements[0]
        assert isinstance(stmt, ast.ReturnStmt)
        assert stmt.value is not None

    def test_call_statement(self):
        (stmt,) = parse_main_body("foo(1, rank);")
        assert isinstance(stmt, ast.CallStmt)
        assert len(stmt.args) == 2

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse_main_body("+;")


class TestCompute:
    def test_full_compute(self):
        (stmt,) = parse_main_body(
            'compute(flops = 10, bytes = 20, locality = 0.5, name = "k");'
        )
        assert isinstance(stmt, ast.ComputeStmt)
        assert stmt.name == "k"
        assert stmt.mem_bytes is not None

    def test_flops_required(self):
        with pytest.raises(ParseError, match="flops"):
            parse_main_body("compute(bytes = 10);")

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ParseError, match="unexpected argument"):
            parse_main_body("compute(flops = 1, cycles = 2);")

    def test_name_must_be_string(self):
        with pytest.raises(ParseError, match="string literal"):
            parse_main_body("compute(flops = 1, name = 3);")

    def test_duplicate_kwarg_rejected(self):
        with pytest.raises(ParseError, match="duplicate keyword"):
            parse_main_body("compute(flops = 1, flops = 2);")


class TestMpiStatements:
    def test_send(self):
        (stmt,) = parse_main_body("send(dest = 1, tag = 2, bytes = 64);")
        assert stmt.op is ast.MpiOp.SEND
        assert isinstance(stmt.dest, ast.IntLit)

    def test_send_missing_required(self):
        with pytest.raises(ParseError, match="missing required"):
            parse_main_body("send(dest = 1, tag = 2);")

    def test_recv_any(self):
        (stmt,) = parse_main_body("recv(src = ANY, tag = ANY);")
        assert isinstance(stmt.src, ast.AnyLit)
        assert isinstance(stmt.tag, ast.AnyLit)

    def test_isend_irecv_requests(self):
        stmts = parse_main_body(
            "isend(dest = 0, tag = 1, bytes = 8, req = r1);"
            "irecv(src = 0, tag = 1, req = r2);"
        )
        assert stmts[0].request == "r1"
        assert stmts[1].request == "r2"

    def test_wait_and_waitall(self):
        stmts = parse_main_body("wait(req = r1); waitall();")
        assert stmts[0].op is ast.MpiOp.WAIT
        assert stmts[1].op is ast.MpiOp.WAITALL

    def test_sendrecv_maps_src_to_recv_src(self):
        (stmt,) = parse_main_body(
            "sendrecv(dest = 1, tag = 2, bytes = 8, src = 3);"
        )
        assert stmt.op is ast.MpiOp.SENDRECV
        assert stmt.recv_src is not None
        assert stmt.src is None
        assert stmt.recv_tag is stmt.tag  # defaults to send tag

    def test_sendrecv_custom_recv_tag(self):
        (stmt,) = parse_main_body(
            "sendrecv(dest = 1, tag = 2, bytes = 8, src = 3, recv_tag = 9);"
        )
        assert isinstance(stmt.recv_tag, ast.IntLit)
        assert stmt.recv_tag.value == 9

    def test_collectives(self):
        stmts = parse_main_body(
            "bcast(root = 0, bytes = 8); allreduce(bytes = 4);"
            "barrier(); alltoall(bytes = 2); reduce(root = 1, bytes = 8);"
            "allgather(bytes = 4); gather(root = 0, bytes = 4);"
            "scatter(root = 0, bytes = 4);"
        )
        ops = [s.op for s in stmts]
        assert ast.MpiOp.BCAST in ops and ast.MpiOp.BARRIER in ops

    def test_mpi_unknown_kwarg(self):
        with pytest.raises(ParseError, match="unexpected argument"):
            parse_main_body("barrier(tag = 1);")

    def test_req_must_be_identifier(self):
        with pytest.raises(ParseError, match="identifier or string"):
            parse_main_body("wait(req = 17);")


class TestExpressions:
    def _expr(self, text):
        (stmt,) = parse_main_body(f"x = {text};")
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parentheses_override(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_comparison_binds_looser_than_add(self):
        e = self._expr("a + 1 < b * 2")
        assert e.op == "<"

    def test_logical_precedence(self):
        e = self._expr("a < 1 && b < 2 || c < 3")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary_minus_and_not(self):
        e = self._expr("-a")
        assert isinstance(e, ast.UnaryExpr) and e.op == "-"
        e = self._expr("!a")
        assert e.op == "!"

    def test_funcref(self):
        e = self._expr("&helper")
        assert isinstance(e, ast.FuncRef)
        assert e.name == "helper"

    def test_builtin_call(self):
        e = self._expr("min(1, max(2, 3))")
        assert isinstance(e, ast.CallExpr)
        assert e.func == "min"
        assert isinstance(e.args[1], ast.CallExpr)

    def test_non_builtin_in_expression_is_varref(self):
        # only whitelisted builtins parse as expression calls
        with pytest.raises(ParseError):
            self._expr("myfunc(1)")

    def test_bool_literals(self):
        assert self._expr("true").value is True
        assert self._expr("false").value is False

    def test_float_literal(self):
        e = self._expr("2.5")
        assert isinstance(e, ast.FloatLit)


class TestStatementIds:
    def test_all_statements_have_unique_ids(self):
        prog = parse_program(
            "def main() { for (var i = 0; i < 2; i = i + 1) {"
            " compute(flops = 1); } foo(); }"
            "def foo() { barrier(); }"
        )
        ids = [s.stmt_id for f in prog.functions.values()
               for s in ast.walk_statements(f.body)]
        assert len(ids) == len(set(ids))
        assert all(i >= 0 for i in ids)

    def test_ids_stable_across_parses(self):
        src = "def main() { compute(flops = 1); barrier(); }"
        a = parse_program(src)
        b = parse_program(src)
        ids_a = [s.stmt_id for s in ast.walk_statements(a.entry.body)]
        ids_b = [s.stmt_id for s in ast.walk_statements(b.entry.body)]
        assert ids_a == ids_b
